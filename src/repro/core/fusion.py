"""Dynamic Fusion Distance (Section V-B).

Pure Lorentz distance is not always the right choice: many trajectory triplets do
respect the triangle inequality, and for those the Euclidean distance is a better
fit.  The paper therefore blends the two with a *per-pair* coefficient that is still
computable in linear time: a lightweight sequence encoder emits, for every
trajectory, a **Lorentz factor vector** ``V_Lo`` and a **Euclidean factor vector**
``V_Eu``; for a pair ``(a, b)`` the Lorentz proportion is

    α_Lo = (V_Lo_a · V_Lo_b) / (V_Lo_a · V_Lo_b + V_Eu_a · V_Eu_b)

and the fused distance is ``d_Fu = α_Lo · d_Lo + (1 − α_Lo) · d_Eu``.

Factor vectors are made strictly positive with a softplus so the proportion is always
well defined and lies in ``(0, 1)``; the paper leaves this detail open and any
positivity-preserving squashing works.
"""

from __future__ import annotations

import numpy as np

from ..nn import LSTM, Linear, Module, Tensor, as_tensor, masked_mean, no_grad, pad_sequences
from .config import LHPluginConfig

__all__ = ["FactorEncoder", "DynamicFusion", "fuse_distances", "lorentz_proportion"]


class FactorEncoder(Module):
    """Sequence-to-vector encoder producing the Lorentz / Euclidean factor vectors.

    The paper selects an LSTM because its cost is linear in trajectory length; a
    mean-pooled linear encoder is provided as a cheaper ablation.  The output vector
    of size ``2 * factor_dim`` is split into ``V_Lo`` (first half) and ``V_Eu``
    (second half), both passed through softplus to stay positive.
    """

    def __init__(self, config: LHPluginConfig):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.config = config
        output_dim = 2 * config.factor_dim
        if config.fusion_encoder == "lstm":
            self.sequence_encoder = LSTM(config.point_features, config.fusion_hidden, rng=rng)
            self.head = Linear(config.fusion_hidden, output_dim, rng=rng)
        else:
            self.sequence_encoder = None
            self.head = Linear(config.point_features, output_dim, rng=rng)

    def forward(self, points) -> tuple[Tensor, Tensor]:
        """Encode one trajectory's point features into ``(V_Lo, V_Eu)``."""
        points = as_tensor(points)
        if points.ndim != 2:
            raise ValueError("FactorEncoder expects a (length, point_features) sequence")
        if self.sequence_encoder is not None:
            _, (hidden, _) = self.sequence_encoder(points, return_sequence=False)
            summary = hidden
        else:
            summary = points.mean(axis=0)
        factors = self.head(summary).softplus() + 1e-6
        half = self.config.factor_dim
        return factors[:half], factors[half:]

    def forward_batch(self, padded, mask: np.ndarray) -> tuple[Tensor, Tensor]:
        """Factor vectors for a padded ``(B, T, point_features)`` batch.

        Returns ``(V_Lo, V_Eu)`` as ``(B, factor_dim)`` tensors; the mask keeps
        padded steps out of the recurrence (or the mean pooling) so every row
        matches the per-sample :meth:`forward` within the parity tolerance.
        """
        padded = as_tensor(padded)
        if padded.ndim != 3:
            raise ValueError("forward_batch expects a (B, T, point_features) batch")
        if self.sequence_encoder is not None:
            _, (hidden, _) = self.sequence_encoder(padded, return_sequence=False, mask=mask)
            summary = hidden
        else:
            summary = masked_mean(padded, mask)
        factors = self.head(summary).softplus() + 1e-6
        half = self.config.factor_dim
        return factors[:, :half], factors[:, half:]


def lorentz_proportion(v_lo_a: Tensor, v_eu_a: Tensor,
                       v_lo_b: Tensor, v_eu_b: Tensor) -> Tensor:
    """The Lorentz proportion ``α_Lo`` (differentiable).

    Accepts single factor vectors (returns a scalar) or aligned ``(B, factor_dim)``
    batches (returns a ``(B,)`` tensor); the inner products run along the last axis
    either way, so the batched rows reproduce the per-pair arithmetic exactly.
    """
    lorentz_term = (as_tensor(v_lo_a) * as_tensor(v_lo_b)).sum(axis=-1)
    euclid_term = (as_tensor(v_eu_a) * as_tensor(v_eu_b)).sum(axis=-1)
    return lorentz_term / (lorentz_term + euclid_term)


def fuse_distances(lorentz: Tensor, euclidean: Tensor, alpha: Tensor) -> Tensor:
    """Fused distance ``α·d_Lo + (1 − α)·d_Eu`` (differentiable)."""
    alpha = as_tensor(alpha)
    return alpha * as_tensor(lorentz) + (1.0 - alpha) * as_tensor(euclidean)


class DynamicFusion(Module):
    """Wrapper owning the factor encoder plus fast NumPy batch paths for retrieval."""

    def __init__(self, config: LHPluginConfig):
        super().__init__()
        self.config = config
        self.encoder = FactorEncoder(config)

    # ------------------------------------------------------------ training path
    def factors(self, points) -> tuple[Tensor, Tensor]:
        """Differentiable factor vectors for one trajectory."""
        return self.encoder(points)

    def factors_batch(self, point_sequences) -> tuple[Tensor, Tensor]:
        """Differentiable ``(B, factor_dim)`` factor vectors for a ragged batch."""
        padded, mask = pad_sequences(point_sequences)
        return self.encoder.forward_batch(Tensor(padded), mask)

    def alpha(self, points_a, points_b) -> Tensor:
        """Differentiable ``α_Lo`` for a pair of trajectories."""
        v_lo_a, v_eu_a = self.encoder(points_a)
        v_lo_b, v_eu_b = self.encoder(points_b)
        return lorentz_proportion(v_lo_a, v_eu_a, v_lo_b, v_eu_b)

    # ----------------------------------------------------------- inference path
    def factors_numpy(self, point_sequences, batch_size: int = 256
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Factor vectors for many trajectories, without building autograd graphs.

        Runs the mask-aware batched encoder in chunks of ``batch_size`` so
        database pre-embedding shares the batched forward path.
        """
        point_sequences = list(point_sequences)
        if not point_sequences:
            empty = np.zeros((0, self.config.factor_dim))
            return empty, empty.copy()
        batch_size = max(int(batch_size), 1)
        lorentz_factors = []
        euclid_factors = []
        with no_grad():
            for start in range(0, len(point_sequences), batch_size):
                v_lo, v_eu = self.factors_batch(point_sequences[start:start + batch_size])
                lorentz_factors.append(v_lo.data.copy())
                euclid_factors.append(v_eu.data.copy())
        return np.concatenate(lorentz_factors), np.concatenate(euclid_factors)

    @staticmethod
    def alpha_matrix(query_factors: tuple[np.ndarray, np.ndarray],
                     database_factors: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        """All-pairs ``α_Lo`` between query and database factor vectors."""
        q_lo, q_eu = query_factors
        d_lo, d_eu = database_factors
        lorentz_term = q_lo @ d_lo.T
        euclid_term = q_eu @ d_eu.T
        return lorentz_term / (lorentz_term + euclid_term)
