"""Configuration object for the LH-plugin."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["LHPluginConfig"]

_VALID_PROJECTIONS = ("cosh", "vanilla")
_VALID_ENCODERS = ("lstm", "mean")


@dataclass(frozen=True)
class LHPluginConfig:
    """Hyper-parameters of the LH-plugin.

    Attributes
    ----------
    beta:
        Curvature / shape parameter β of the hyperboloid ``H(β)`` (paper default 1).
    compression:
        Exponent ``c`` of the norm compression ``γ_c(x) = x^{1/c}`` used by the cosh
        projection (paper default 4).
    projection:
        ``"cosh"`` (proposed) or ``"vanilla"`` (ablation baseline).
    use_fusion:
        Whether to blend Lorentz and Euclidean distances with the dynamic fusion
        module.  When False, the plugin returns the pure Lorentz distance
        (the "lh-cosh" / "lh-vanilla" ablation rows).
    factor_dim:
        Dimensionality of each factor vector (V_Lo and V_Eu) produced by the fusion
        encoder.
    fusion_hidden:
        Hidden size of the fusion factor encoder.
    fusion_encoder:
        ``"lstm"`` (paper's choice, linear in trajectory length) or ``"mean"`` (mean-
        pooled MLP, an even cheaper ablation).
    point_features:
        Number of per-point input features the fusion encoder consumes (2 for
        (lon, lat), 3 when a timestamp is present).
    seed:
        Seed for the plugin's own parameter initialisation.
    """

    beta: float = 1.0
    compression: float = 4.0
    projection: str = "cosh"
    use_fusion: bool = True
    factor_dim: int = 8
    fusion_hidden: int = 16
    fusion_encoder: str = "lstm"
    point_features: int = 2
    seed: int = 0

    def __post_init__(self):
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.compression <= 0:
            raise ValueError("compression must be positive")
        if self.projection not in _VALID_PROJECTIONS:
            raise ValueError(f"projection must be one of {_VALID_PROJECTIONS}")
        if self.fusion_encoder not in _VALID_ENCODERS:
            raise ValueError(f"fusion_encoder must be one of {_VALID_ENCODERS}")
        if self.factor_dim <= 0 or self.fusion_hidden <= 0:
            raise ValueError("factor_dim and fusion_hidden must be positive")
        if self.point_features not in (2, 3):
            raise ValueError("point_features must be 2 (spatial) or 3 (spatio-temporal)")

    def with_updates(self, **kwargs) -> "LHPluginConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @staticmethod
    def ablation_variant(name: str, **kwargs) -> "LHPluginConfig":
        """Named configurations matching the paper's ablation rows (Table VI).

        ``"lh-vanilla"``: Lorentz distance with the vanilla projection, no fusion.
        ``"lh-cosh"``: Lorentz distance with the cosh projection, no fusion.
        ``"fusion-dist"``: the full LH-plugin (cosh projection + dynamic fusion).
        """
        variants = {
            "lh-vanilla": {"projection": "vanilla", "use_fusion": False},
            "lh-cosh": {"projection": "cosh", "use_fusion": False},
            "fusion-dist": {"projection": "cosh", "use_fusion": True},
        }
        if name not in variants:
            raise KeyError(f"unknown ablation variant '{name}'; options: {sorted(variants)}")
        merged = {**variants[name], **kwargs}
        return LHPluginConfig(**merged)
