"""repro — reproduction of the LH-plugin (ICDE 2025).

"Towards Robust Trajectory Embedding for Similarity Computation: When Triangle
Inequality Violations in Distance Metrics Matter" introduces a model-agnostic
Lorentzian-hyperbolic plugin (LH-plugin) for trajectory similarity representation
learning.  This package implements the plugin and every substrate it needs:

* :mod:`repro.nn` — a from-scratch NumPy autodiff / neural-network engine;
* :mod:`repro.distances` — DTW, SSPD, EDR, ERP, LCSS, Hausdorff, discrete Fréchet,
  TP and DITA trajectory distances;
* :mod:`repro.engine` — the pluggable compute engine: vectorized wavefront kernels,
  serial/chunked/process execution strategies and a content-addressed matrix cache;
* :mod:`repro.data` — trajectory containers, synthetic city generators, grid /
  quadtree preprocessing;
* :mod:`repro.violation` — triangle-inequality violation statistics (TVF, RV, ARVS);
* :mod:`repro.core` — the LH-plugin itself (Lorentz distance, cosh projection,
  dynamic fusion);
* :mod:`repro.models` — Neutraj, TrajGAT, Traj2SimVec, ST2Vec and Tedj re-implementations;
* :mod:`repro.training` / :mod:`repro.eval` — similarity training loop and HR@k /
  NDCG / efficiency evaluation;
* :mod:`repro.search` — the top-k query-serving subsystem: per-measure lower
  bounds, exact filter-and-refine ``knn_search``, embedding ANN, and the
  micro-batching ``SearchService``;
* :mod:`repro.experiments` — one harness per table and figure of the paper.

Quickstart
----------
>>> from repro import generate_dataset, LHPlugin, LHPluginConfig
>>> from repro.models import MeanPoolEncoder
>>> from repro.training import SimilarityTrainer
>>> from repro.distances import pairwise_distance_matrix, normalize_matrix
>>> dataset = generate_dataset("chengdu", size=60, seed=0)
>>> truth = normalize_matrix(pairwise_distance_matrix([t.coordinates for t in dataset], "dtw"))
>>> encoder = MeanPoolEncoder.build(dataset, embedding_dim=16)
>>> trainer = SimilarityTrainer(encoder, plugin=LHPlugin(LHPluginConfig()))
>>> history = trainer.fit(dataset, truth, epochs=3)
"""

from .core import (
    LHPlugin,
    LHPluginConfig,
    PluggedEncoder,
    lorentz_distance,
    lorentz_inner,
    cosh_projection,
    vanilla_projection,
)
from .data import Trajectory, TrajectoryDataset, generate_dataset, available_presets
from .engine import MatrixEngine, get_default_engine, set_default_engine
from .search import SearchService, TrajectoryIndex, knn_search
from .violation import ratio_of_violation, average_relative_violation, violation_report

__version__ = "1.0.0"

__all__ = [
    "LHPlugin", "LHPluginConfig", "PluggedEncoder",
    "lorentz_distance", "lorentz_inner", "cosh_projection", "vanilla_projection",
    "Trajectory", "TrajectoryDataset", "generate_dataset", "available_presets",
    "MatrixEngine", "get_default_engine", "set_default_engine",
    "SearchService", "TrajectoryIndex", "knn_search",
    "ratio_of_violation", "average_relative_violation", "violation_report",
    "__version__",
]
