"""A small reverse-mode automatic differentiation engine on top of NumPy.

The paper trains its models with PyTorch; this module is the offline substitute.
It provides a :class:`Tensor` that records a computation tape and can back-propagate
gradients through the operations needed by the trajectory encoders and the LH-plugin
(matrix products, element-wise arithmetic, activations, hyperbolic functions,
reductions, indexing, concatenation).

The implementation is define-by-run: every operation returns a new ``Tensor`` whose
``_backward`` closure knows how to push its output gradient onto its parents.
Broadcasting follows NumPy semantics; gradients of broadcast operands are summed back
to the operand's original shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking (mirrors ``torch.no_grad``)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64`` unless already a float array.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, _prev=(), name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad = None
        self._backward = None
        self._prev = tuple(_prev) if self.requires_grad or _prev else ()
        self.name = name

    # ------------------------------------------------------------------ utils
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # --------------------------------------------------------------- plumbing
    @staticmethod
    def _make(data, parents, backward, requires_grad):
        out = Tensor(data, requires_grad=requires_grad, _prev=parents)
        if out.requires_grad:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad = self.grad + grad

    def backward(self, grad=None) -> None:
        """Back-propagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        # Topological order of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other):
        other = as_tensor(other)
        requires = self.requires_grad or other.requires_grad
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward, requires)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward, self.requires_grad)

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __mul__(self, other):
        other = as_tensor(other)
        requires = self.requires_grad or other.requires_grad
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward, requires)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        requires = self.requires_grad or other.requires_grad
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return self._make(out_data, (self, other), backward, requires)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def __matmul__(self, other):
        other = as_tensor(other)
        requires = self.requires_grad or other.requires_grad
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    if self.data.ndim == 1:
                        self._accumulate(grad * other.data)
                    else:
                        self._accumulate(np.outer(grad, other.data).reshape(self.shape))
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    if other.data.ndim == 1:
                        other._accumulate(grad * self.data)
                    else:
                        other._accumulate(np.outer(self.data, grad).reshape(other.shape))
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(grad_other, other.shape))

        return self._make(out_data, (self, other), backward, requires)

    # ------------------------------------------------------------ activations
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward, self.requires_grad)

    def log(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward, self.requires_grad)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def relu(self):
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward, self.requires_grad)

    def softplus(self):
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / (1.0 + np.exp(-self.data)))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def cosh(self):
        out_data = np.cosh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.sinh(self.data))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def sinh(self):
        out_data = np.sinh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.cosh(self.data))

        return self._make(out_data, (self,), backward, self.requires_grad)

    def abs(self):
        sign = np.sign(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward, self.requires_grad)

    def clip(self, low: float, high: float):
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(np.clip(self.data, low, high), (self,), backward, self.requires_grad)

    # -------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            grad = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad, self.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis)
                expanded = np.broadcast_to(grad, self.shape)
            self._accumulate(expanded.copy())

        return self._make(out_data, (self,), backward, self.requires_grad)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / count

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            grad = np.asarray(grad)
            if axis is None:
                mask = self.data == out_data
                self._accumulate(grad * mask / mask.sum())
            else:
                expanded_out = out_data if keepdims else np.expand_dims(out_data, axis)
                expanded_grad = grad if keepdims else np.expand_dims(grad, axis)
                mask = self.data == expanded_out
                counts = mask.sum(axis=axis, keepdims=True)
                self._accumulate(expanded_grad * mask / counts)

        return self._make(out_data, (self,), backward, self.requires_grad)

    def norm(self, axis=None, keepdims: bool = False, eps: float = 1e-12):
        """Euclidean (L2) norm along ``axis`` with a numerically safe gradient."""
        squared = (self * self).sum(axis=axis, keepdims=keepdims)
        return (squared + eps).sqrt()

    # -------------------------------------------------------------- reshaping
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(self.data.reshape(shape), (self,), backward, self.requires_grad)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward, self.requires_grad)

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward, self.requires_grad)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` without copying existing tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
