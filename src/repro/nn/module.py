"""Base class for neural-network modules (a minimal ``torch.nn.Module`` analogue)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Container for parameters and sub-modules with recursive traversal.

    Subclasses implement :meth:`forward`; calling the module invokes it. Parameters
    and sub-modules assigned as attributes are discovered automatically, in
    deterministic (sorted attribute name) order, so optimiser state is stable across
    runs.
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------- traversal
    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters of this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs in deterministic order."""
        for name in sorted(self._parameters):
            yield prefix + name, self._parameters[name]
        for name in sorted(self._modules):
            child = self._modules[name]
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendant modules."""
        yield self
        for name in sorted(self._modules):
            yield from self._modules[name].modules()

    # ----------------------------------------------------------------- state
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Switch the module (and children) between training and evaluation mode."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.size for param in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            param = own[name]
            if param.data.shape != np.asarray(values).shape:
                raise ValueError(f"shape mismatch for {name}")
            param.data = np.asarray(values, dtype=np.float64).copy()
