"""Recurrent layers: LSTM and GRU cells and sequence encoders.

The trajectory encoders of the paper (Neutraj, Traj2SimVec, ST2Vec and the dynamic
fusion factor encoder) are all built on recurrent networks; these implementations
process sequences step by step on top of the autodiff engine.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .ops import concat
from .tensor import Tensor, as_tensor

__all__ = ["LSTMCell", "GRUCell", "LSTM", "GRU"]


class LSTMCell(Module):
    """Single-step LSTM cell with combined gate projection."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_size = 4 * hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((gate_size, input_size), rng))
        self.weight_hh = Parameter(init.orthogonal((gate_size, hidden_size), rng)
                                   if hidden_size > 1 else
                                   init.xavier_uniform((gate_size, hidden_size), rng))
        self.bias = Parameter(init.zeros((gate_size,)))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        hidden, cell = state
        gates = x @ self.weight_ih.T + hidden @ self.weight_hh.T + self.bias
        h = self.hidden_size
        input_gate = gates[..., 0:h].sigmoid()
        forget_gate = gates[..., h:2 * h].sigmoid()
        candidate = gates[..., 2 * h:3 * h].tanh()
        output_gate = gates[..., 3 * h:4 * h].sigmoid()
        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class GRUCell(Module):
    """Single-step GRU cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_size = 3 * hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((gate_size, input_size), rng))
        self.weight_hh = Parameter(init.orthogonal((gate_size, hidden_size), rng)
                                   if hidden_size > 1 else
                                   init.xavier_uniform((gate_size, hidden_size), rng))
        self.bias = Parameter(init.zeros((gate_size,)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        h = self.hidden_size
        projected_input = x @ self.weight_ih.T + self.bias
        projected_hidden = hidden @ self.weight_hh.T
        reset = (projected_input[..., 0:h] + projected_hidden[..., 0:h]).sigmoid()
        update = (projected_input[..., h:2 * h] + projected_hidden[..., h:2 * h]).sigmoid()
        candidate = (projected_input[..., 2 * h:3 * h]
                     + reset * projected_hidden[..., 2 * h:3 * h]).tanh()
        return update * hidden + (1.0 - update) * candidate

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class _Recurrent(Module):
    """Shared driver that unrolls a cell over a (batch, time, features) sequence."""

    def __init__(self):
        super().__init__()

    def _iterate(self, sequence: Tensor):
        sequence = as_tensor(sequence)
        if sequence.ndim == 2:
            sequence = sequence.reshape(1, *sequence.shape)
        steps = sequence.shape[1]
        for t in range(steps):
            yield sequence[:, t, :]

    @staticmethod
    def _check_mask(mask, batch: int, steps: int) -> np.ndarray | None:
        """Validate a ``(batch, steps)`` validity mask (1.0 valid / 0.0 padding)."""
        if mask is None:
            return None
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != (batch, steps):
            raise ValueError(f"mask shape {mask.shape} does not match the "
                             f"({batch}, {steps}) padded sequence")
        return mask

    @staticmethod
    def _masked_update(new_state: Tensor, old_state: Tensor, keep: Tensor,
                       drop: Tensor) -> Tensor:
        """Carry ``old_state`` through padded steps: ``new·m + old·(1 − m)``.

        With a {0, 1} mask the blend is exact: valid rows take the freshly
        computed state unchanged and padded rows keep the previous state, so the
        final state of every sample equals its per-sample recurrence and padded
        inputs receive exact-zero gradients.
        """
        return new_state * keep + old_state * drop


class LSTM(_Recurrent):
    """LSTM sequence encoder returning all hidden states and the final state.

    Set ``return_sequence=False`` when only the final state is needed — it skips
    assembling the per-step output tensor, which matters for the many single-sequence
    forward passes the trajectory encoders perform.

    A ``(batch, steps)`` validity ``mask`` (from :func:`repro.nn.pad_sequences`)
    makes the layer padding-aware: padded steps carry the previous state through,
    so every sample's final state equals its unpadded per-sample recurrence.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor, return_sequence: bool = True,
                mask: np.ndarray | None = None) -> tuple[Tensor | None, tuple[Tensor, Tensor]]:
        sequence = as_tensor(sequence)
        squeeze = sequence.ndim == 2
        if squeeze:
            sequence = sequence.reshape(1, *sequence.shape)
        batch = sequence.shape[0]
        mask = self._check_mask(mask, batch, sequence.shape[1])
        hidden, cell = self.cell.initial_state(batch)
        outputs = []
        for t, step in enumerate(self._iterate(sequence)):
            new_hidden, new_cell = self.cell(step, (hidden, cell))
            if mask is None or mask[:, t].all():
                hidden, cell = new_hidden, new_cell
            else:
                keep = Tensor(mask[:, t:t + 1])
                drop = Tensor(1.0 - mask[:, t:t + 1])
                hidden = self._masked_update(new_hidden, hidden, keep, drop)
                cell = self._masked_update(new_cell, cell, keep, drop)
            if return_sequence:
                outputs.append(hidden)
        stacked = None
        if return_sequence:
            stacked = concat([h.reshape(batch, 1, self.hidden_size) for h in outputs], axis=1)
        if squeeze:
            if stacked is not None:
                stacked = stacked.reshape(stacked.shape[1], self.hidden_size)
            hidden = hidden.reshape(self.hidden_size)
            cell = cell.reshape(self.hidden_size)
        return stacked, (hidden, cell)


class GRU(_Recurrent):
    """GRU sequence encoder returning all hidden states and the final state.

    ``return_sequence=False`` skips assembling the per-step outputs and ``mask``
    makes padded batches behave like per-sample recurrences (see LSTM).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor, return_sequence: bool = True,
                mask: np.ndarray | None = None) -> tuple[Tensor | None, Tensor]:
        sequence = as_tensor(sequence)
        squeeze = sequence.ndim == 2
        if squeeze:
            sequence = sequence.reshape(1, *sequence.shape)
        batch = sequence.shape[0]
        mask = self._check_mask(mask, batch, sequence.shape[1])
        hidden = self.cell.initial_state(batch)
        outputs = []
        for t, step in enumerate(self._iterate(sequence)):
            new_hidden = self.cell(step, hidden)
            if mask is None or mask[:, t].all():
                hidden = new_hidden
            else:
                keep = Tensor(mask[:, t:t + 1])
                drop = Tensor(1.0 - mask[:, t:t + 1])
                hidden = self._masked_update(new_hidden, hidden, keep, drop)
            if return_sequence:
                outputs.append(hidden)
        stacked = None
        if return_sequence:
            stacked = concat([h.reshape(batch, 1, self.hidden_size) for h in outputs], axis=1)
        if squeeze:
            if stacked is not None:
                stacked = stacked.reshape(stacked.shape[1], self.hidden_size)
            hidden = hidden.reshape(self.hidden_size)
        return stacked, hidden
