"""Recurrent layers: LSTM and GRU cells and sequence encoders.

The trajectory encoders of the paper (Neutraj, Traj2SimVec, ST2Vec and the dynamic
fusion factor encoder) are all built on recurrent networks; these implementations
process sequences step by step on top of the autodiff engine.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .ops import concat
from .tensor import Tensor, as_tensor

__all__ = ["LSTMCell", "GRUCell", "LSTM", "GRU"]


class LSTMCell(Module):
    """Single-step LSTM cell with combined gate projection."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_size = 4 * hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((gate_size, input_size), rng))
        self.weight_hh = Parameter(init.orthogonal((gate_size, hidden_size), rng)
                                   if hidden_size > 1 else
                                   init.xavier_uniform((gate_size, hidden_size), rng))
        self.bias = Parameter(init.zeros((gate_size,)))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        hidden, cell = state
        gates = x @ self.weight_ih.T + hidden @ self.weight_hh.T + self.bias
        h = self.hidden_size
        input_gate = gates[..., 0:h].sigmoid()
        forget_gate = gates[..., h:2 * h].sigmoid()
        candidate = gates[..., 2 * h:3 * h].tanh()
        output_gate = gates[..., 3 * h:4 * h].sigmoid()
        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class GRUCell(Module):
    """Single-step GRU cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_size = 3 * hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((gate_size, input_size), rng))
        self.weight_hh = Parameter(init.orthogonal((gate_size, hidden_size), rng)
                                   if hidden_size > 1 else
                                   init.xavier_uniform((gate_size, hidden_size), rng))
        self.bias = Parameter(init.zeros((gate_size,)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        h = self.hidden_size
        projected_input = x @ self.weight_ih.T + self.bias
        projected_hidden = hidden @ self.weight_hh.T
        reset = (projected_input[..., 0:h] + projected_hidden[..., 0:h]).sigmoid()
        update = (projected_input[..., h:2 * h] + projected_hidden[..., h:2 * h]).sigmoid()
        candidate = (projected_input[..., 2 * h:3 * h]
                     + reset * projected_hidden[..., 2 * h:3 * h]).tanh()
        return update * hidden + (1.0 - update) * candidate

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class _Recurrent(Module):
    """Shared driver that unrolls a cell over a (batch, time, features) sequence."""

    def __init__(self):
        super().__init__()

    def _iterate(self, sequence: Tensor):
        sequence = as_tensor(sequence)
        if sequence.ndim == 2:
            sequence = sequence.reshape(1, *sequence.shape)
        steps = sequence.shape[1]
        for t in range(steps):
            yield sequence[:, t, :]


class LSTM(_Recurrent):
    """LSTM sequence encoder returning all hidden states and the final state.

    Set ``return_sequence=False`` when only the final state is needed — it skips
    assembling the per-step output tensor, which matters for the many single-sequence
    forward passes the trajectory encoders perform.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor,
                return_sequence: bool = True) -> tuple[Tensor | None, tuple[Tensor, Tensor]]:
        sequence = as_tensor(sequence)
        squeeze = sequence.ndim == 2
        if squeeze:
            sequence = sequence.reshape(1, *sequence.shape)
        batch = sequence.shape[0]
        hidden, cell = self.cell.initial_state(batch)
        outputs = []
        for step in self._iterate(sequence):
            hidden, cell = self.cell(step, (hidden, cell))
            if return_sequence:
                outputs.append(hidden)
        stacked = None
        if return_sequence:
            stacked = concat([h.reshape(batch, 1, self.hidden_size) for h in outputs], axis=1)
        if squeeze:
            if stacked is not None:
                stacked = stacked.reshape(stacked.shape[1], self.hidden_size)
            hidden = hidden.reshape(self.hidden_size)
            cell = cell.reshape(self.hidden_size)
        return stacked, (hidden, cell)


class GRU(_Recurrent):
    """GRU sequence encoder returning all hidden states and the final state.

    ``return_sequence=False`` skips assembling the per-step outputs (see LSTM).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor,
                return_sequence: bool = True) -> tuple[Tensor | None, Tensor]:
        sequence = as_tensor(sequence)
        squeeze = sequence.ndim == 2
        if squeeze:
            sequence = sequence.reshape(1, *sequence.shape)
        batch = sequence.shape[0]
        hidden = self.cell.initial_state(batch)
        outputs = []
        for step in self._iterate(sequence):
            hidden = self.cell(step, hidden)
            if return_sequence:
                outputs.append(hidden)
        stacked = None
        if return_sequence:
            stacked = concat([h.reshape(batch, 1, self.hidden_size) for h in outputs], axis=1)
        if squeeze:
            if stacked is not None:
                stacked = stacked.reshape(stacked.shape[1], self.hidden_size)
            hidden = hidden.reshape(self.hidden_size)
        return stacked, hidden
