"""Feed-forward building blocks: Linear, Embedding, MLP, Sequential, LayerNorm, Dropout."""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["Linear", "Embedding", "Sequential", "MLP", "LayerNorm", "Dropout", "Identity"]


class Linear(Module):
    """Affine transformation ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionalities.
    bias:
        Whether to add a learnable bias.
    rng:
        Random generator used for weight initialisation.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.xavier_normal((num_embeddings, embedding_dim), rng))

    def forward(self, token_ids) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.intp)
        return self.weight[token_ids]


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layer_names = []
        for index, layer in enumerate(layers):
            name = f"layer{index}"
            setattr(self, name, layer)
            self._layer_names.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._layer_names:
            x = getattr(self, name)(x)
        return x

    def __len__(self) -> int:
        return len(self._layer_names)


class _Activation(Module):
    """Element-wise activation wrapper so activations can live inside Sequential."""

    def __init__(self, kind: str):
        super().__init__()
        if kind not in {"relu", "tanh", "sigmoid"}:
            raise ValueError(f"unsupported activation: {kind}")
        self.kind = kind

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if self.kind == "relu":
            return x.relu()
        if self.kind == "tanh":
            return x.tanh()
        return x.sigmoid()


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden-layer stack."""

    def __init__(self, in_features: int, hidden_features, out_features: int,
                 activation: str = "relu", rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if isinstance(hidden_features, int):
            hidden_features = [hidden_features]
        dims = [in_features, *hidden_features, out_features]
        layers: list[Module] = []
        for index, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            if index < len(dims) - 2:
                layers.append(_Activation(activation))
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gain = Parameter(np.ones(features))
        self.shift = Parameter(np.zeros(features))

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred / (variance + self.eps).sqrt()
        return normalised * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        mask = self._rng.random(x.shape) >= self.p
        return x * Tensor(mask / (1.0 - self.p))


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x)
