"""Attention mechanisms: scaled dot-product, co-attention and graph attention.

TrajGAT relies on graph attention over a quadtree graph, and ST2Vec combines
spatial and temporal streams through co-attention; both are provided here.
"""

from __future__ import annotations

import numpy as np

from .layers import Linear
from .module import Module, Parameter
from .ops import concat, softmax
from .tensor import Tensor, as_tensor
from . import init

__all__ = ["ScaledDotProductAttention", "CoAttention", "GraphAttentionLayer"]


class ScaledDotProductAttention(Module):
    """Single-head scaled dot-product attention.

    Expects ``query`` (n_q, d), ``key`` (n_k, d) and ``value`` (n_k, d_v); returns the
    attended values (n_q, d_v) and the attention weights.
    """

    def __init__(self, scale: float | None = None):
        super().__init__()
        self.scale = scale

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        query = as_tensor(query)
        key = as_tensor(key)
        value = as_tensor(value)
        scale = self.scale if self.scale is not None else float(np.sqrt(key.shape[-1]))
        scores = (query @ key.T) / scale
        if mask is not None:
            scores = scores + Tensor(np.where(mask, 0.0, -1e9))
        weights = softmax(scores, axis=-1)
        return weights @ value, weights


class CoAttention(Module):
    """Co-attention between two sequences (spatial and temporal streams in ST2Vec).

    Each stream attends over the other; the outputs are fused by summation with the
    original stream and projected back to the model dimension.
    """

    def __init__(self, features: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.attend_ab = ScaledDotProductAttention()
        self.attend_ba = ScaledDotProductAttention()
        self.project_a = Linear(2 * features, features, rng=rng)
        self.project_b = Linear(2 * features, features, rng=rng)

    def forward(self, stream_a: Tensor, stream_b: Tensor) -> tuple[Tensor, Tensor]:
        attended_a, _ = self.attend_ab(stream_a, stream_b, stream_b)
        attended_b, _ = self.attend_ba(stream_b, stream_a, stream_a)
        fused_a = self.project_a(concat([stream_a, attended_a], axis=-1)).tanh()
        fused_b = self.project_b(concat([stream_b, attended_b], axis=-1)).tanh()
        return fused_a, fused_b


class GraphAttentionLayer(Module):
    """Graph attention layer (GAT) over a dense adjacency matrix.

    Node features of shape (n, in_features) are projected and combined with
    attention coefficients computed from concatenated endpoint features, as in
    Velickovic et al.; only edges present in the adjacency matrix participate.
    """

    def __init__(self, in_features: int, out_features: int,
                 leaky_slope: float = 0.2, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.leaky_slope = leaky_slope
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.attention_src = Parameter(init.xavier_uniform((out_features,), rng))
        self.attention_dst = Parameter(init.xavier_uniform((out_features,), rng))

    def _leaky_relu(self, x: Tensor) -> Tensor:
        positive = x.relu()
        negative = (x * -1.0).relu() * -self.leaky_slope
        return positive + negative

    def forward(self, node_features: Tensor, adjacency: np.ndarray) -> Tensor:
        node_features = as_tensor(node_features)
        adjacency = np.asarray(adjacency, dtype=bool)
        projected = node_features @ self.weight.T                      # (n, out)
        src_score = (projected * self.attention_src).sum(axis=-1)      # (n,)
        dst_score = (projected * self.attention_dst).sum(axis=-1)      # (n,)
        n = projected.shape[0]
        scores = self._leaky_relu(src_score.reshape(n, 1) + dst_score.reshape(1, n))
        masked = scores + Tensor(np.where(adjacency, 0.0, -1e9))
        weights = softmax(masked, axis=-1)
        return (weights @ projected).tanh()
