"""Attention mechanisms: scaled dot-product, co-attention and graph attention.

TrajGAT relies on graph attention over a quadtree graph, and ST2Vec combines
spatial and temporal streams through co-attention; both are provided here.
"""

from __future__ import annotations

import numpy as np

from .layers import Linear
from .module import Module, Parameter
from .ops import concat, softmax
from .tensor import Tensor, as_tensor
from . import init

__all__ = ["ScaledDotProductAttention", "CoAttention", "GraphAttentionLayer"]


class ScaledDotProductAttention(Module):
    """Single-head scaled dot-product attention.

    Expects ``query`` (n_q, d), ``key`` (n_k, d) and ``value`` (n_k, d_v) — or their
    batched ``(B, ·, ·)`` forms — and returns the attended values plus the attention
    weights.  ``mask`` is a boolean keep-mask broadcastable to the score shape (for
    a padded batch, ``(B, 1, n_k)`` marking valid key positions); masked positions
    receive a ``-1e9`` score, which underflows to exactly zero weight after the
    softmax's max-shift, so batched masked attention matches per-sample attention
    over only the valid keys.
    """

    def __init__(self, scale: float | None = None):
        super().__init__()
        self.scale = scale

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        query = as_tensor(query)
        key = as_tensor(key)
        value = as_tensor(value)
        scale = self.scale if self.scale is not None else float(np.sqrt(key.shape[-1]))
        key_t = key.transpose(0, 2, 1) if key.ndim == 3 else key.T
        scores = (query @ key_t) / scale
        if mask is not None:
            scores = scores + Tensor(np.where(mask, 0.0, -1e9))
        weights = softmax(scores, axis=-1)
        return weights @ value, weights


class CoAttention(Module):
    """Co-attention between two sequences (spatial and temporal streams in ST2Vec).

    Each stream attends over the other; the outputs are fused by summation with the
    original stream and projected back to the model dimension.
    """

    def __init__(self, features: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.attend_ab = ScaledDotProductAttention()
        self.attend_ba = ScaledDotProductAttention()
        self.project_a = Linear(2 * features, features, rng=rng)
        self.project_b = Linear(2 * features, features, rng=rng)

    def forward(self, stream_a: Tensor, stream_b: Tensor,
                mask_a: np.ndarray | None = None,
                mask_b: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
        """Fuse two streams; ``mask_a``/``mask_b`` are ``(B, T)`` validity masks.

        For padded ``(B, T, H)`` batches each direction masks the *key* side, so
        no query ever attends to a padded position.  Rows at padded query
        positions still produce (finite) values — callers pool with
        :func:`repro.nn.masked_mean` to exclude them.
        """
        key_mask_b = None if mask_b is None else (np.asarray(mask_b) > 0.0)[:, None, :]
        key_mask_a = None if mask_a is None else (np.asarray(mask_a) > 0.0)[:, None, :]
        attended_a, _ = self.attend_ab(stream_a, stream_b, stream_b, mask=key_mask_b)
        attended_b, _ = self.attend_ba(stream_b, stream_a, stream_a, mask=key_mask_a)
        fused_a = self.project_a(concat([stream_a, attended_a], axis=-1)).tanh()
        fused_b = self.project_b(concat([stream_b, attended_b], axis=-1)).tanh()
        return fused_a, fused_b


class GraphAttentionLayer(Module):
    """Graph attention layer (GAT) over a dense adjacency matrix.

    Node features of shape (n, in_features) are projected and combined with
    attention coefficients computed from concatenated endpoint features, as in
    Velickovic et al.; only edges present in the adjacency matrix participate.
    """

    def __init__(self, in_features: int, out_features: int,
                 leaky_slope: float = 0.2, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.leaky_slope = leaky_slope
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.attention_src = Parameter(init.xavier_uniform((out_features,), rng))
        self.attention_dst = Parameter(init.xavier_uniform((out_features,), rng))

    def _leaky_relu(self, x: Tensor) -> Tensor:
        positive = x.relu()
        negative = (x * -1.0).relu() * -self.leaky_slope
        return positive + negative

    def forward(self, node_features: Tensor, adjacency: np.ndarray) -> Tensor:
        """Attend over a graph, or a padded batch of graphs.

        ``node_features`` is ``(n, in)`` with an ``(n, n)`` boolean adjacency, or
        ``(B, n, in)`` with ``(B, n, n)`` adjacencies where padded node rows are
        all-False.  Absent edges get a ``-1e9`` score, so their softmax weight
        underflows to exactly zero; padded nodes therefore never influence real
        nodes, and their own (meaningless) outputs are excluded by the caller's
        masked pooling.
        """
        node_features = as_tensor(node_features)
        adjacency = np.asarray(adjacency, dtype=bool)
        projected = node_features @ self.weight.T                      # (..., n, out)
        src_score = (projected * self.attention_src).sum(axis=-1)      # (..., n)
        dst_score = (projected * self.attention_dst).sum(axis=-1)      # (..., n)
        n = projected.shape[-2]
        if node_features.ndim == 3:
            batch = projected.shape[0]
            scores = self._leaky_relu(src_score.reshape(batch, n, 1)
                                      + dst_score.reshape(batch, 1, n))
        else:
            scores = self._leaky_relu(src_score.reshape(n, 1) + dst_score.reshape(1, n))
        masked = scores + Tensor(np.where(adjacency, 0.0, -1e9))
        weights = softmax(masked, axis=-1)
        return (weights @ projected).tanh()
