"""Loss functions for distance-regression and ranking-based similarity learning.

Trajectory similarity models are trained to make embedding distances match ground
truth trajectory distances.  The paper's base models use either plain regression
(MSE on distances) or weighted-rank losses that emphasise the nearest neighbours;
both families are provided, plus the triplet margin loss used in ablations.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "mse_loss",
    "mae_loss",
    "weighted_rank_loss",
    "triplet_margin_loss",
    "relative_distance_loss",
]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def relative_distance_loss(prediction: Tensor, target: Tensor, eps: float = 1e-6) -> Tensor:
    """Squared relative error ``((pred - target) / (target + eps))²``.

    Trajectory distances span orders of magnitude; normalising by the target keeps the
    nearest neighbours (small distances) from being drowned out by far pairs.
    """
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = (prediction - target) / (target + eps)
    return (diff * diff).mean()


def weighted_rank_loss(prediction: Tensor, target: Tensor, decay: float = 0.5) -> Tensor:
    """Neutraj-style weighted regression: closer ground-truth pairs get larger weights.

    The weight of each pair is ``exp(-decay * rank)`` where rank is the pair's position
    in the ground-truth ordering (0 = most similar).  This mirrors the seed-guided
    weighting of Yao et al. (2019) without the memory-augmented sampling machinery.
    """
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    order = np.argsort(target.data)
    ranks = np.empty_like(order)
    ranks[order] = np.arange(len(order))
    weights = np.exp(-decay * ranks)
    weights = weights / weights.sum()
    diff = prediction - target
    return (Tensor(weights) * diff * diff).sum()


def triplet_margin_loss(anchor_positive: Tensor, anchor_negative: Tensor,
                        margin: float = 1.0) -> Tensor:
    """Hinge loss pushing the negative pair at least ``margin`` farther than the positive."""
    anchor_positive = as_tensor(anchor_positive)
    anchor_negative = as_tensor(anchor_negative)
    return (anchor_positive - anchor_negative + margin).relu().mean()
