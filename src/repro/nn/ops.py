"""Functional operations on :class:`~repro.nn.tensor.Tensor` objects.

These helpers complement the methods defined directly on ``Tensor`` with
multi-operand operations (concatenation, stacking) and common derived functions
(softmax, dot products, distances) used by the trajectory encoders and the
LH-plugin modules.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "concat",
    "stack",
    "softmax",
    "log_softmax",
    "dot",
    "euclidean_distance",
    "pairwise_euclidean",
    "lorentz_inner",
    "squared_distance",
]


def concat(tensors, axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each input."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if not tensor.requires_grad:
                continue
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward, requires)


def stack(tensors, axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)

    def backward(grad):
        split = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, split):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(data, tuple(tensors), backward, requires)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax implemented with differentiable primitives."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Logarithm of the softmax, computed stably."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dot(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Inner product along ``axis`` (batched)."""
    return (as_tensor(a) * as_tensor(b)).sum(axis=axis)


def squared_distance(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Squared Euclidean distance along ``axis``."""
    diff = as_tensor(a) - as_tensor(b)
    return (diff * diff).sum(axis=axis)


def euclidean_distance(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Euclidean distance along ``axis`` with a safe gradient at zero."""
    return (squared_distance(a, b, axis=axis) + eps).sqrt()


def pairwise_euclidean(x: Tensor) -> Tensor:
    """All-pairs Euclidean distance matrix of the rows of ``x`` (n, d) -> (n, n)."""
    x = as_tensor(x)
    n = x.shape[0]
    rows = x.reshape(n, 1, x.shape[1])
    cols = x.reshape(1, n, x.shape[1])
    return euclidean_distance(rows, cols, axis=-1)


def lorentz_inner(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Lorentz inner product ``⟨a, b⟩ = -a₀b₀ + Σᵢ aᵢbᵢ`` along ``axis``.

    The first component along ``axis`` is the time-like coordinate.
    """
    a = as_tensor(a)
    b = as_tensor(b)
    product = a * b
    full = product.sum(axis=axis)
    if axis == -1 or axis == a.ndim - 1:
        time_like = product[..., 0]
    else:
        raise ValueError("lorentz_inner only supports the last axis")
    return full - 2.0 * time_like
