"""Gradient-descent optimisers and learning-rate schedules."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "clip_grad_norm"]


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, parameters, lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimiser learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Clip gradients in-place so their global L2 norm does not exceed ``max_norm``."""
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad = param.grad * scale
    return total
