"""Parameter initialisation helpers.

All initialisers accept an explicit :class:`numpy.random.Generator` so that model
construction is fully reproducible without relying on global RNG state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "uniform", "zeros", "orthogonal"]


def _fan_in_out(shape) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def uniform(shape, rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform initialisation in ``[low, high]``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(shape)


def orthogonal(shape, rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation, useful for recurrent weight matrices."""
    if len(shape) != 2:
        raise ValueError("orthogonal initialisation requires a 2-D shape")
    rows, cols = shape
    matrix = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(matrix)
    q = q[:rows, :cols] if rows >= cols else q[:cols, :rows].T
    return q
