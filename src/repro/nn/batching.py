"""Mask-aware sequence batching: padding helpers and masked reductions.

The learning stack batches ragged trajectory sequences the same way the engine
layer batches DP wavefronts: sequences are padded to a common length and every
batched operation carries a ``(B, T)`` validity mask so padding never leaks into
activations or gradients.

Two invariants make the batched paths numerically interchangeable with the
per-sample ones (the parity contract pinned by ``tests/test_batch_parity.py``):

* padded positions are multiplied by an exact ``0.0`` before any reduction, so
  they contribute exact zeros to sums (and exact-zero gradients backwards);
* masked recurrent updates blend ``new * m + old * (1 - m)`` with ``m ∈ {0, 1}``,
  so valid steps compute exactly the per-sample recurrence and padded steps
  carry the previous state through unchanged.

The helpers here are NumPy-in / Tensor-out where differentiability is needed;
the masks themselves are plain ``float64`` arrays (constants of the graph).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "pad_sequences",
    "pad_token_sequences",
    "masked_sum",
    "masked_mean",
]


def pad_sequences(sequences) -> tuple[np.ndarray, np.ndarray]:
    """Pad ragged ``(T_i, F)`` float sequences to ``(B, T_max, F)`` plus a mask.

    Returns ``(padded, mask)`` where ``mask`` is a ``(B, T_max)`` float array
    with 1.0 at valid positions and 0.0 at padding.  Padded positions hold
    zeros; consumers must combine them with the mask (masked RNN updates,
    masked reductions, attention bias) rather than rely on the zeros.
    """
    arrays = [np.asarray(sequence, dtype=np.float64) for sequence in sequences]
    if not arrays:
        raise ValueError("pad_sequences needs at least one sequence")
    for array in arrays:
        if array.ndim != 2 or array.shape[0] == 0:
            raise ValueError("every sequence must be a non-empty (T, F) array")
    features = {array.shape[1] for array in arrays}
    if len(features) != 1:
        raise ValueError(f"sequences disagree on feature width: {sorted(features)}")
    longest = max(len(array) for array in arrays)
    padded = np.zeros((len(arrays), longest, features.pop()))
    mask = np.zeros((len(arrays), longest))
    for row, array in enumerate(arrays):
        padded[row, :len(array)] = array
        mask[row, :len(array)] = 1.0
    return padded, mask


def pad_token_sequences(sequences, fill: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Pad ragged 1-D integer token sequences to ``(B, T_max)`` plus a mask.

    Padded positions hold ``fill`` (a valid vocabulary id so embedding lookups
    stay in range); the mask guarantees their gradients are exact zeros.
    """
    arrays = [np.asarray(sequence, dtype=np.intp) for sequence in sequences]
    if not arrays:
        raise ValueError("pad_token_sequences needs at least one sequence")
    for array in arrays:
        if array.ndim != 1 or array.shape[0] == 0:
            raise ValueError("every token sequence must be a non-empty 1-D array")
    longest = max(len(array) for array in arrays)
    padded = np.full((len(arrays), longest), fill, dtype=np.intp)
    mask = np.zeros((len(arrays), longest))
    for row, array in enumerate(arrays):
        padded[row, :len(array)] = array
        mask[row, :len(array)] = 1.0
    return padded, mask


def masked_sum(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Sum ``x`` over ``axis`` counting only positions where ``mask`` is 1.

    ``x`` is ``(B, T, F)`` (or ``(B, T)``) and ``mask`` is ``(B, T)``; padded
    positions are multiplied by an exact 0.0 first, so they add nothing and
    receive zero gradient.
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=np.float64)
    weights = mask.reshape(mask.shape + (1,) * (x.ndim - mask.ndim))
    return (x * Tensor(weights)).sum(axis=axis)


def masked_mean(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean of ``x`` over ``axis`` restricted to valid positions.

    Divides the masked sum by the per-row valid count, matching the per-sample
    ``x.mean(axis=0)`` exactly (same divisor, padded terms contribute 0.0).
    """
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=np.float64)
    counts = mask.sum(axis=axis if axis < mask.ndim else -1)
    counts = np.maximum(counts, 1.0)
    summed = masked_sum(x, mask, axis=axis)
    divisor = counts.reshape(counts.shape + (1,) * (summed.ndim - counts.ndim))
    return summed / Tensor(divisor)
