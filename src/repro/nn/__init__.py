"""``repro.nn`` — a from-scratch NumPy neural-network substrate.

This package replaces PyTorch for the offline reproduction: a reverse-mode autodiff
``Tensor``, layers (Linear, Embedding, MLP, LayerNorm, Dropout), recurrent cells
(LSTM, GRU), attention (dot-product, co-attention, graph attention), optimisers
(SGD, Adam), the loss functions used for similarity learning, and mask-aware
sequence batching (padding helpers, masked reductions, masked recurrences and
attention) so ragged trajectory batches train in one forward pass.
"""

from .tensor import Tensor, as_tensor, no_grad, is_grad_enabled
from .module import Module, Parameter
from .layers import Linear, Embedding, Sequential, MLP, LayerNorm, Dropout, Identity
from .rnn import LSTM, GRU, LSTMCell, GRUCell
from .attention import ScaledDotProductAttention, CoAttention, GraphAttentionLayer
from .optim import SGD, Adam, StepLR, Optimizer, clip_grad_norm
from .losses import (
    mse_loss,
    mae_loss,
    weighted_rank_loss,
    triplet_margin_loss,
    relative_distance_loss,
)
from .ops import (
    concat,
    stack,
    softmax,
    log_softmax,
    dot,
    euclidean_distance,
    pairwise_euclidean,
    lorentz_inner,
    squared_distance,
)
from .batching import (
    pad_sequences,
    pad_token_sequences,
    masked_sum,
    masked_mean,
)
from . import init

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "Module", "Parameter",
    "Linear", "Embedding", "Sequential", "MLP", "LayerNorm", "Dropout", "Identity",
    "LSTM", "GRU", "LSTMCell", "GRUCell",
    "ScaledDotProductAttention", "CoAttention", "GraphAttentionLayer",
    "SGD", "Adam", "StepLR", "Optimizer", "clip_grad_norm",
    "mse_loss", "mae_loss", "weighted_rank_loss", "triplet_margin_loss",
    "relative_distance_loss",
    "concat", "stack", "softmax", "log_softmax", "dot",
    "euclidean_distance", "pairwise_euclidean", "lorentz_inner", "squared_distance",
    "pad_sequences", "pad_token_sequences", "masked_sum", "masked_mean",
    "init",
]
