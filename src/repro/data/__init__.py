"""``repro.data`` — trajectory containers, synthetic city generators and preprocessing.

Contents: :class:`Trajectory` / :class:`TrajectoryDataset`, synthetic taxi-trajectory
generation with city presets, grid and quadtree spatial indexing (Neutraj / Tedj /
TrajGAT preprocessing), coordinate normalisation and NPZ/CSV persistence.
"""

from .trajectory import Trajectory, TrajectoryDataset, BoundingBox
from .synthetic import (
    CityPreset,
    CITY_PRESETS,
    generate_dataset,
    generate_trajectory,
    available_presets,
    StreamTick,
    StreamWorkload,
    generate_stream_workload,
)
from .grid import Grid, SpatioTemporalGrid
from .quadtree import QuadTree, QuadTreeNode, trajectory_graph
from .normalize import Normalizer, remove_stationary_points, clip_to_box
from .io import save_npz, load_npz, save_csv, load_csv

__all__ = [
    "Trajectory", "TrajectoryDataset", "BoundingBox",
    "CityPreset", "CITY_PRESETS", "generate_dataset", "generate_trajectory",
    "available_presets",
    "StreamTick", "StreamWorkload", "generate_stream_workload",
    "Grid", "SpatioTemporalGrid",
    "QuadTree", "QuadTreeNode", "trajectory_graph",
    "Normalizer", "remove_stationary_points", "clip_to_box",
    "save_npz", "load_npz", "save_csv", "load_csv",
]
