"""Dataset persistence: NPZ archives and simple CSV import/export.

NPZ is the native format (lossless, fast); CSV follows the common
``trajectory_id, lon, lat[, t]`` long format used by public taxi datasets so users
can bring their own data.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .trajectory import Trajectory, TrajectoryDataset

__all__ = ["save_npz", "load_npz", "save_csv", "load_csv"]


def save_npz(dataset: TrajectoryDataset, path) -> Path:
    """Save a dataset to a compressed ``.npz`` archive."""
    path = Path(path)
    arrays = {f"trajectory_{i}": t.points for i, t in enumerate(dataset)}
    ids = np.array([str(t.trajectory_id) for t in dataset])
    np.savez_compressed(path, __name__=np.array([dataset.name]), __ids__=ids, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_npz(path) -> TrajectoryDataset:
    """Load a dataset saved by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        name = str(archive["__name__"][0]) if "__name__" in archive else "dataset"
        ids = archive["__ids__"] if "__ids__" in archive else None
        keys = sorted((k for k in archive.files if k.startswith("trajectory_")),
                      key=lambda k: int(k.split("_")[1]))
        trajectories = []
        for index, key in enumerate(keys):
            trajectory_id = str(ids[index]) if ids is not None else index
            trajectories.append(Trajectory(archive[key], trajectory_id=trajectory_id))
    return TrajectoryDataset(trajectories, name=name)


def save_csv(dataset: TrajectoryDataset, path) -> Path:
    """Save a dataset in long CSV format: trajectory_id, lon, lat[, t]."""
    path = Path(path)
    has_time = dataset.has_time
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["trajectory_id", "lon", "lat"] + (["t"] if has_time else [])
        writer.writerow(header)
        for trajectory in dataset:
            for point in trajectory.points:
                row = [trajectory.trajectory_id, point[0], point[1]]
                if has_time:
                    row.append(point[2] if len(point) > 2 else 0.0)
                writer.writerow(row)
    return path


def load_csv(path, name: str | None = None) -> TrajectoryDataset:
    """Load a long-format CSV (``trajectory_id, lon, lat[, t]``) into a dataset."""
    path = Path(path)
    groups: dict[str, list[list[float]]] = {}
    order: list[str] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "lon" not in reader.fieldnames:
            raise ValueError("CSV must have a header with trajectory_id, lon, lat[, t]")
        has_time = "t" in reader.fieldnames
        for row in reader:
            trajectory_id = row["trajectory_id"]
            if trajectory_id not in groups:
                groups[trajectory_id] = []
                order.append(trajectory_id)
            point = [float(row["lon"]), float(row["lat"])]
            if has_time:
                point.append(float(row["t"]))
            groups[trajectory_id].append(point)
    trajectories = [Trajectory(np.array(groups[tid]), trajectory_id=tid) for tid in order]
    return TrajectoryDataset(trajectories, name=name or path.stem)
