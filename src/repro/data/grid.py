"""Grid-cell partitioning of the trajectory space.

Neutraj discretises the city into a regular grid and feeds grid-cell coordinates to
its recurrent encoder; Tedj uses a 3-D spatio-temporal grid.  Both preprocessing
steps are implemented here.
"""

from __future__ import annotations

import numpy as np

from .trajectory import BoundingBox, Trajectory, TrajectoryDataset

__all__ = ["Grid", "SpatioTemporalGrid"]


class Grid:
    """A regular 2-D grid over a bounding box.

    Cells are indexed by integer ``(column, row)`` pairs and by a flat token id
    ``row * num_columns + column``, which embedding layers can consume directly.
    """

    def __init__(self, bounding_box: BoundingBox, num_columns: int = 32, num_rows: int = 32):
        if num_columns <= 0 or num_rows <= 0:
            raise ValueError("grid dimensions must be positive")
        self.bounding_box = bounding_box
        self.num_columns = num_columns
        self.num_rows = num_rows
        self.cell_width = bounding_box.width / num_columns or 1.0
        self.cell_height = bounding_box.height / num_rows or 1.0

    @property
    def num_cells(self) -> int:
        return self.num_columns * self.num_rows

    @staticmethod
    def for_dataset(dataset: TrajectoryDataset, num_columns: int = 32,
                    num_rows: int = 32, margin: float = 1e-6) -> "Grid":
        """Build a grid covering a dataset's bounding box (with a small margin)."""
        return Grid(dataset.bounding_box.expanded(margin), num_columns, num_rows)

    # ------------------------------------------------------------------ cells
    def cell_of(self, lon: float, lat: float) -> tuple[int, int]:
        """(column, row) of the cell containing a point (clamped to the grid)."""
        column = int((lon - self.bounding_box.min_lon) / self.cell_width)
        row = int((lat - self.bounding_box.min_lat) / self.cell_height)
        column = min(max(column, 0), self.num_columns - 1)
        row = min(max(row, 0), self.num_rows - 1)
        return column, row

    def token_of(self, lon: float, lat: float) -> int:
        """Flat token id of the cell containing a point."""
        column, row = self.cell_of(lon, lat)
        return row * self.num_columns + column

    def cell_center(self, column: int, row: int) -> tuple[float, float]:
        """Centre coordinates of a cell."""
        lon = self.bounding_box.min_lon + (column + 0.5) * self.cell_width
        lat = self.bounding_box.min_lat + (row + 0.5) * self.cell_height
        return lon, lat

    def neighbors_of(self, column: int, row: int, radius: int = 1) -> list[tuple[int, int]]:
        """Cells within a Chebyshev ``radius`` (excluding the cell itself)."""
        cells = []
        for dc in range(-radius, radius + 1):
            for dr in range(-radius, radius + 1):
                if dc == 0 and dr == 0:
                    continue
                nc, nr = column + dc, row + dr
                if 0 <= nc < self.num_columns and 0 <= nr < self.num_rows:
                    cells.append((nc, nr))
        return cells

    # ------------------------------------------------------------ trajectories
    def tokenize(self, trajectory: Trajectory) -> np.ndarray:
        """Sequence of flat cell tokens visited by the trajectory."""
        coords = trajectory.coordinates if isinstance(trajectory, Trajectory) else np.asarray(trajectory)
        return np.array([self.token_of(lon, lat) for lon, lat in coords[:, :2]], dtype=np.int64)

    def cell_sequence(self, trajectory: Trajectory) -> np.ndarray:
        """Sequence of (column, row) cells visited by the trajectory."""
        coords = trajectory.coordinates if isinstance(trajectory, Trajectory) else np.asarray(trajectory)
        return np.array([self.cell_of(lon, lat) for lon, lat in coords[:, :2]], dtype=np.int64)

    def features(self, trajectory: Trajectory) -> np.ndarray:
        """Per-point features: normalised coordinates plus normalised cell indices.

        This is the hybrid coordinate/cell representation Neutraj feeds to its GRU.
        """
        coords = trajectory.coordinates if isinstance(trajectory, Trajectory) else np.asarray(trajectory)
        coords = coords[:, :2]
        cells = np.array([self.cell_of(lon, lat) for lon, lat in coords], dtype=np.float64)
        normalised_coords = np.empty_like(coords)
        normalised_coords[:, 0] = (coords[:, 0] - self.bounding_box.min_lon) / max(self.bounding_box.width, 1e-12)
        normalised_coords[:, 1] = (coords[:, 1] - self.bounding_box.min_lat) / max(self.bounding_box.height, 1e-12)
        normalised_cells = cells / [self.num_columns, self.num_rows]
        return np.hstack([normalised_coords, normalised_cells])


class SpatioTemporalGrid:
    """A 3-D (lon, lat, time) grid, the preprocessing used by Tedj.

    Time is binned into ``num_time_bins`` slots over the dataset's observed time range
    (or a caller-provided range).
    """

    def __init__(self, grid: Grid, time_start: float, time_stop: float, num_time_bins: int = 24):
        if num_time_bins <= 0:
            raise ValueError("num_time_bins must be positive")
        if time_stop <= time_start:
            time_stop = time_start + 1.0
        self.grid = grid
        self.time_start = time_start
        self.time_stop = time_stop
        self.num_time_bins = num_time_bins
        self.time_width = (time_stop - time_start) / num_time_bins

    @property
    def num_cells(self) -> int:
        return self.grid.num_cells * self.num_time_bins

    @staticmethod
    def for_dataset(dataset: TrajectoryDataset, num_columns: int = 16, num_rows: int = 16,
                    num_time_bins: int = 24) -> "SpatioTemporalGrid":
        if not dataset.has_time:
            raise ValueError("SpatioTemporalGrid requires a spatio-temporal dataset")
        grid = Grid.for_dataset(dataset, num_columns, num_rows)
        times = np.concatenate([t.timestamps for t in dataset])
        return SpatioTemporalGrid(grid, float(times.min()), float(times.max()) + 1e-9,
                                  num_time_bins)

    def time_bin(self, timestamp: float) -> int:
        """Index of the time slot containing ``timestamp`` (clamped)."""
        index = int((timestamp - self.time_start) / self.time_width)
        return min(max(index, 0), self.num_time_bins - 1)

    def token_of(self, lon: float, lat: float, timestamp: float) -> int:
        """Flat token combining the spatial cell and the time bin."""
        spatial = self.grid.token_of(lon, lat)
        return self.time_bin(timestamp) * self.grid.num_cells + spatial

    def tokenize(self, trajectory: Trajectory) -> np.ndarray:
        """Sequence of spatio-temporal tokens for a timestamped trajectory."""
        if not trajectory.has_time:
            raise ValueError("trajectory has no time column")
        return np.array([self.token_of(lon, lat, t) for lon, lat, t in trajectory.points],
                        dtype=np.int64)

    def features(self, trajectory: Trajectory) -> np.ndarray:
        """Normalised (lon, lat, time, cell-column, cell-row, time-bin) features."""
        if not trajectory.has_time:
            raise ValueError("trajectory has no time column")
        spatial = self.grid.features(trajectory)
        times = trajectory.timestamps
        normalised_time = (times - self.time_start) / max(self.time_stop - self.time_start, 1e-12)
        bins = np.array([self.time_bin(t) for t in times], dtype=np.float64) / self.num_time_bins
        return np.hstack([spatial[:, :2], normalised_time[:, None], spatial[:, 2:], bins[:, None]])
