"""Synthetic taxi-trajectory generators with city presets.

The paper evaluates on proprietary or large public GPS corpora (Chengdu, Porto,
Xi'an, T-Drive, OSM, Geolife).  Those cannot be downloaded offline, so this module
generates populations with the statistical properties the experiments rely on:

* trajectories cluster around a limited set of *routes* (origin/destination flows on a
  street-like grid), so meaningful nearest neighbours exist for retrieval experiments;
* individual trips add detours, GPS noise and irregular sampling, so non-metric
  measures (DTW, SSPD, EDR) exhibit substantial triangle-inequality violations —
  exactly the regime the LH-plugin targets (verified by the Table I benchmark);
* presets differ in spatial extent, trip length, noise and detour frequency, mirroring
  the qualitative differences between the original datasets (e.g. T-Drive's sparse
  sampling yields far more violations than OSM traces, as in Table I).

All generation is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .trajectory import BoundingBox, Trajectory, TrajectoryDataset

__all__ = ["CityPreset", "CITY_PRESETS", "generate_dataset", "generate_trajectory",
           "available_presets",
           "StreamTick", "StreamWorkload", "generate_stream_workload"]


@dataclass(frozen=True)
class CityPreset:
    """Parameters controlling a synthetic city's trajectory population.

    Attributes
    ----------
    name:
        Preset identifier (matches the paper's dataset names, lower-case).
    bounding_box:
        Spatial extent of the city in abstract coordinate units.
    num_routes:
        Number of distinct origin/destination flows trajectories cluster around.
    waypoints:
        Number of intermediate route waypoints (route tortuosity).
    mean_points, std_points:
        Trajectory length distribution (number of GPS samples).
    min_points:
        Hard lower bound on samples per trajectory.
    gps_noise:
        Standard deviation of per-point GPS jitter.
    detour_probability:
        Chance that an individual trip inserts a loop/zig-zag detour; detours are the
        main driver of triangle-inequality violations.
    detour_scale:
        Spatial magnitude of detours relative to the city size.
    sampling_jitter:
        Irregularity of the along-route sampling positions.
    speed:
        Mean travel speed in coordinate units per time unit (for timestamps).
    with_time:
        Whether trajectories carry a timestamp column.
    """

    name: str
    bounding_box: BoundingBox
    num_routes: int = 20
    waypoints: int = 3
    mean_points: float = 24.0
    std_points: float = 6.0
    min_points: int = 8
    gps_noise: float = 0.01
    detour_probability: float = 0.35
    detour_scale: float = 0.15
    sampling_jitter: float = 0.25
    speed: float = 0.05
    with_time: bool = False


def _box(width: float, height: float) -> BoundingBox:
    return BoundingBox(0.0, 0.0, width, height)


#: City presets named after the paper's datasets.  The parameters are chosen so the
#: *relative* violation behaviour in Table I is qualitatively reproduced: T-Drive and
#: Geolife (sparse, long, noisy) violate most, OSM (smooth traces) least.
CITY_PRESETS: dict[str, CityPreset] = {
    "chengdu": CityPreset("chengdu", _box(2.0, 2.0), num_routes=8, waypoints=3,
                          mean_points=18, std_points=10, min_points=5, gps_noise=0.015,
                          detour_probability=0.55, detour_scale=0.28),
    "porto": CityPreset("porto", _box(1.6, 1.2), num_routes=8, waypoints=3,
                        mean_points=16, std_points=9, min_points=5, gps_noise=0.012,
                        detour_probability=0.60, detour_scale=0.30),
    "xian": CityPreset("xian", _box(1.8, 1.8), num_routes=9, waypoints=3,
                       mean_points=17, std_points=9, min_points=5, gps_noise=0.012,
                       detour_probability=0.55, detour_scale=0.26),
    "tdrive": CityPreset("tdrive", _box(3.0, 3.0), num_routes=6, waypoints=4,
                         mean_points=14, std_points=10, min_points=5, gps_noise=0.030,
                         detour_probability=0.75, detour_scale=0.38,
                         sampling_jitter=0.45, with_time=True),
    "osm": CityPreset("osm", _box(2.5, 2.5), num_routes=20, waypoints=2,
                      mean_points=26, std_points=5, min_points=8, gps_noise=0.005,
                      detour_probability=0.20, detour_scale=0.10),
    "geolife": CityPreset("geolife", _box(2.2, 2.2), num_routes=6, waypoints=4,
                          mean_points=15, std_points=10, min_points=5, gps_noise=0.025,
                          detour_probability=0.70, detour_scale=0.35,
                          sampling_jitter=0.40, with_time=True),
}


def available_presets() -> list[str]:
    """Names of the built-in city presets."""
    return sorted(CITY_PRESETS)


def _resolve_preset(preset, with_time: bool | None) -> CityPreset:
    if isinstance(preset, str):
        key = preset.lower()
        if key not in CITY_PRESETS:
            raise KeyError(f"unknown city preset '{preset}'; available: {available_presets()}")
        preset = CITY_PRESETS[key]
    if not isinstance(preset, CityPreset):
        raise TypeError("preset must be a name or a CityPreset")
    if with_time is not None and with_time != preset.with_time:
        preset = replace(preset, with_time=with_time)
    return preset


def _make_routes(preset: CityPreset, rng: np.random.Generator) -> list[np.ndarray]:
    """Sample the city's route skeletons: origin, waypoints, destination."""
    box = preset.bounding_box
    routes = []
    for _ in range(preset.num_routes):
        count = preset.waypoints + 2
        lons = rng.uniform(box.min_lon, box.max_lon, size=count)
        lats = rng.uniform(box.min_lat, box.max_lat, size=count)
        # Snap intermediate waypoints toward a street grid to induce shared corridors.
        grid = min(box.width, box.height) / 8.0
        lons[1:-1] = np.round(lons[1:-1] / grid) * grid
        lats[1:-1] = np.round(lats[1:-1] / grid) * grid
        routes.append(np.stack([lons, lats], axis=1))
    return routes


def _route_polyline(route: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Interpolate the route at fractional positions in [0, 1] (arc-length param)."""
    segments = np.diff(route, axis=0)
    lengths = np.sqrt((segments ** 2).sum(axis=1))
    total = lengths.sum()
    if total == 0.0:
        return np.repeat(route[:1], len(positions), axis=0)
    cumulative = np.concatenate([[0.0], np.cumsum(lengths)]) / total
    lons = np.interp(positions, cumulative, route[:, 0])
    lats = np.interp(positions, cumulative, route[:, 1])
    return np.stack([lons, lats], axis=1)


def _insert_detour(points: np.ndarray, preset: CityPreset,
                   rng: np.random.Generator) -> np.ndarray:
    """Insert a loop/zig-zag detour in the middle of a trip.

    Detours make the detoured trajectory simultaneously "close" to trajectories on
    either side of it under alignment-based measures, which is what produces triangle
    inequality violations (cf. Example 1 of the paper).
    """
    if len(points) < 6:
        return points
    start = rng.integers(1, len(points) // 2)
    length = rng.integers(2, max(3, len(points) // 3))
    stop = min(start + length, len(points) - 1)
    scale = preset.detour_scale * min(preset.bounding_box.width, preset.bounding_box.height)
    direction = rng.normal(size=2)
    direction /= np.linalg.norm(direction) + 1e-12
    bump = np.sin(np.linspace(0.0, np.pi, stop - start))[:, None] * direction * scale
    detoured = points.copy()
    detoured[start:stop] = detoured[start:stop] + bump
    return detoured


def generate_trajectory(preset: CityPreset, route: np.ndarray, trajectory_id: int,
                        rng: np.random.Generator) -> Trajectory:
    """Generate a single trip following ``route`` with per-trip variability."""
    num_points = max(preset.min_points,
                     int(round(rng.normal(preset.mean_points, preset.std_points))))
    positions = np.linspace(0.0, 1.0, num_points)
    jitter = rng.normal(0.0, preset.sampling_jitter / num_points, size=num_points)
    positions = np.clip(np.sort(positions + jitter), 0.0, 1.0)
    points = _route_polyline(route, positions)
    if rng.random() < preset.detour_probability:
        points = _insert_detour(points, preset, rng)
    points = points + rng.normal(0.0, preset.gps_noise, size=points.shape)

    if preset.with_time:
        steps = np.sqrt((np.diff(points, axis=0) ** 2).sum(axis=1))
        speeds = np.maximum(rng.normal(preset.speed, preset.speed * 0.3, size=len(steps)),
                            preset.speed * 0.2)
        durations = steps / speeds
        start_time = rng.uniform(0.0, 24.0)
        timestamps = start_time + np.concatenate([[0.0], np.cumsum(durations)])
        points = np.column_stack([points, timestamps])

    return Trajectory(points, trajectory_id=trajectory_id,
                      metadata={"preset": preset.name})


def generate_dataset(preset="chengdu", size: int = 200, seed: int = 0,
                     with_time: bool | None = None) -> TrajectoryDataset:
    """Generate a synthetic trajectory dataset for a city preset.

    Parameters
    ----------
    preset:
        Preset name (``"chengdu"``, ``"porto"``, ``"xian"``, ``"tdrive"``, ``"osm"``,
        ``"geolife"``) or a :class:`CityPreset` instance.
    size:
        Number of trajectories to generate.
    seed:
        RNG seed; the same (preset, size, seed) triple always yields the same data.
    with_time:
        Override the preset's timestamp behaviour (e.g. force spatio-temporal data).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    preset = _resolve_preset(preset, with_time)
    rng = np.random.default_rng(seed)
    routes = _make_routes(preset, rng)
    route_choices = rng.integers(0, len(routes), size=size)
    trajectories = [
        generate_trajectory(preset, routes[route_choices[index]], index, rng)
        for index in range(size)
    ]
    return TrajectoryDataset(trajectories, name=preset.name)


# --------------------------------------------------------------------------- #
# Streaming workloads                                                         #
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class StreamTick:
    """One batch of stream updates: per-trajectory appended points and head evicts."""

    tick: int
    appends: dict  # trajectory_id -> (p, d) float64 points
    evicts: dict   # trajectory_id -> number of points dropped from the head


@dataclass(frozen=True)
class StreamWorkload:
    """A city-scale streaming workload: initial windows plus a tick schedule.

    ``initial`` holds one ``(n, d)`` float64 window per stream (stream ``i``
    keeps id ``i``); ``ticks`` is the arrival schedule to replay against a
    :class:`~repro.engine.streaming.StreamingEngine` or
    :class:`~repro.search.monitor.StreamMonitor`.  ``final_lengths`` is the
    window length of every stream after the whole schedule — handy for sizing
    recompute baselines.
    """

    preset: str
    initial: list
    ticks: list
    final_lengths: list

    @property
    def num_streams(self) -> int:
        return len(self.initial)

    def total_appended_points(self) -> int:
        return sum(len(points) for tick in self.ticks
                   for points in tick.appends.values())


def _stream_path(preset: CityPreset, route: np.ndarray, total_points: int,
                 points_per_lap: int, rng: np.random.Generator) -> np.ndarray:
    """A vehicle's full sampled path: back-and-forth laps along its route.

    Arc-length progress accumulates irregular positive increments (the
    preset's sampling jitter regime) and folds through a triangle wave, so the
    path stays continuous when a lap ends and the vehicle turns around —
    appends always extend the previous window smoothly, like a live GPS feed.
    """
    increments = rng.uniform(1.0 - preset.sampling_jitter,
                             1.0 + preset.sampling_jitter, size=total_points)
    progress = np.cumsum(increments) / max(points_per_lap, 1)
    positions = 1.0 - np.abs(1.0 - np.mod(progress, 2.0))
    points = _route_polyline(route, positions)
    points = points + rng.normal(0.0, preset.gps_noise, size=points.shape)
    if preset.with_time:
        steps = np.sqrt((np.diff(points, axis=0) ** 2).sum(axis=1))
        speeds = np.maximum(rng.normal(preset.speed, preset.speed * 0.3,
                                       size=len(steps)), preset.speed * 0.2)
        timestamps = np.concatenate([[0.0], np.cumsum(steps / speeds)])
        timestamps += rng.uniform(0.0, 24.0)
        points = np.column_stack([points, timestamps])
    return np.ascontiguousarray(points, dtype=np.float64)


def generate_stream_workload(preset="chengdu", streams: int = 200,
                             ticks: int = 50, seed: int = 0,
                             initial_points: int = 12,
                             update_fraction: float = 0.15,
                             mean_appends: float = 2.0,
                             evict_fraction: float = 0.0,
                             max_evict: int = 2,
                             with_time: bool | None = None) -> StreamWorkload:
    """Generate a city-scale streaming workload over the road-like grid.

    Each stream is a vehicle shuttling along one of the preset's route
    corridors; its future points are sampled up front so the schedule is
    deterministic given ``seed``.  The arrival process is per-tick Bernoulli
    thinning: every tick each stream reports with probability
    ``update_fraction``, delivering ``1 + Poisson(mean_appends - 1)`` new GPS
    points; with probability ``evict_fraction`` a reporting stream *also*
    slides its window head forward by up to ``max_evict`` points (never
    emptying the window).  ``evict_fraction=0`` gives a pure append-only
    (growing-window) workload; raising it shifts the mix toward sliding
    windows, which is what exercises the engine's checkpoint machinery.
    """
    if streams <= 0 or ticks < 0:
        raise ValueError("streams must be positive and ticks non-negative")
    if initial_points < 1:
        raise ValueError("initial_points must be at least 1")
    if not 0.0 <= update_fraction <= 1.0 or not 0.0 <= evict_fraction <= 1.0:
        raise ValueError("update_fraction and evict_fraction must be in [0, 1]")
    if mean_appends < 1.0:
        raise ValueError("mean_appends must be at least 1")
    preset = _resolve_preset(preset, with_time)
    rng = np.random.default_rng(seed)
    routes = _make_routes(preset, rng)
    route_choices = rng.integers(0, len(routes), size=streams)
    # Budget enough future points that no stream ever runs out mid-schedule.
    budget = initial_points + int(np.ceil(
        ticks * update_fraction * (mean_appends + 3.0 * np.sqrt(mean_appends))
    )) + 8 * max(int(mean_appends), 1)
    points_per_lap = max(int(round(preset.mean_points)), 2)
    paths = [_stream_path(preset, routes[route_choices[index]], budget,
                          points_per_lap, rng) for index in range(streams)]
    cursors = [initial_points] * streams
    lengths = [initial_points] * streams
    initial = [paths[index][:initial_points].copy() for index in range(streams)]

    schedule: list[StreamTick] = []
    for tick_number in range(1, ticks + 1):
        appends: dict[int, np.ndarray] = {}
        evicts: dict[int, int] = {}
        reporting = np.flatnonzero(rng.random(streams) < update_fraction)
        for index in reporting.tolist():
            count = 1 + int(rng.poisson(mean_appends - 1.0))
            count = min(count, len(paths[index]) - cursors[index])
            if count <= 0:
                continue
            appends[index] = paths[index][cursors[index]:cursors[index] + count]
            cursors[index] += count
            lengths[index] += count
            if evict_fraction > 0.0 and rng.random() < evict_fraction:
                drop = min(int(rng.integers(1, max_evict + 1)),
                           lengths[index] - 1)
                if drop > 0:
                    evicts[index] = drop
                    lengths[index] -= drop
        schedule.append(StreamTick(tick_number, appends, evicts))
    return StreamWorkload(preset.name, initial, schedule, list(lengths))
