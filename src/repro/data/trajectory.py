"""Trajectory and dataset containers.

A :class:`Trajectory` wraps an ``(n, 2)`` or ``(n, 3)`` array of ``(lon, lat[, t])``
points plus optional metadata; a :class:`TrajectoryDataset` is an ordered collection
with convenience accessors for splits, bounding boxes and per-trajectory statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Trajectory", "TrajectoryDataset", "BoundingBox"]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box in (lon, lat) space."""

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float

    @property
    def width(self) -> float:
        return self.max_lon - self.min_lon

    @property
    def height(self) -> float:
        return self.max_lat - self.min_lat

    def contains(self, lon: float, lat: float) -> bool:
        """Whether a point lies inside (inclusive) the box."""
        return (self.min_lon <= lon <= self.max_lon) and (self.min_lat <= lat <= self.max_lat)

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        return BoundingBox(self.min_lon - margin, self.min_lat - margin,
                           self.max_lon + margin, self.max_lat + margin)

    @staticmethod
    def of_points(points: np.ndarray) -> "BoundingBox":
        points = np.asarray(points, dtype=np.float64)
        return BoundingBox(float(points[:, 0].min()), float(points[:, 1].min()),
                           float(points[:, 0].max()), float(points[:, 1].max()))


class Trajectory:
    """A single trajectory: a point sequence with an identifier and metadata."""

    __slots__ = ("points", "trajectory_id", "metadata")

    def __init__(self, points, trajectory_id: int | str = 0, metadata: dict | None = None):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] not in (2, 3):
            raise ValueError("points must be an (n, 2) or (n, 3) array")
        if len(points) == 0:
            raise ValueError("a trajectory needs at least one point")
        self.points = points
        self.trajectory_id = trajectory_id
        self.metadata = metadata or {}

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __getitem__(self, index):
        return self.points[index]

    def __repr__(self) -> str:
        return f"Trajectory(id={self.trajectory_id!r}, points={len(self)})"

    @property
    def has_time(self) -> bool:
        return self.points.shape[1] == 3

    @property
    def coordinates(self) -> np.ndarray:
        """The spatial (lon, lat) columns."""
        return self.points[:, :2]

    @property
    def timestamps(self) -> np.ndarray:
        """The time column; raises if the trajectory is purely spatial."""
        if not self.has_time:
            raise AttributeError("trajectory has no time column")
        return self.points[:, 2]

    @property
    def bounding_box(self) -> BoundingBox:
        return BoundingBox.of_points(self.coordinates)

    def length(self) -> float:
        """Total travelled (polyline) length in coordinate units."""
        if len(self.points) < 2:
            return 0.0
        steps = np.diff(self.coordinates, axis=0)
        return float(np.sqrt((steps ** 2).sum(axis=1)).sum())

    def resample(self, num_points: int) -> "Trajectory":
        """Return a copy resampled to ``num_points`` by linear interpolation."""
        if num_points < 2:
            raise ValueError("num_points must be at least 2")
        positions = np.linspace(0.0, len(self.points) - 1.0, num_points)
        lower = np.floor(positions).astype(int)
        upper = np.minimum(lower + 1, len(self.points) - 1)
        weight = (positions - lower)[:, None]
        resampled = (1.0 - weight) * self.points[lower] + weight * self.points[upper]
        return Trajectory(resampled, self.trajectory_id, dict(self.metadata))

    def downsample(self, keep_every: int) -> "Trajectory":
        """Keep every ``keep_every``-th point (the last point is always kept)."""
        if keep_every < 1:
            raise ValueError("keep_every must be >= 1")
        indices = list(range(0, len(self.points), keep_every))
        if indices[-1] != len(self.points) - 1:
            indices.append(len(self.points) - 1)
        return Trajectory(self.points[indices], self.trajectory_id, dict(self.metadata))

    def spatial_only(self) -> "Trajectory":
        """Drop the time column, if present."""
        return Trajectory(self.coordinates.copy(), self.trajectory_id, dict(self.metadata))


class TrajectoryDataset:
    """An ordered collection of trajectories with split/statistics helpers."""

    def __init__(self, trajectories: Sequence[Trajectory], name: str = "dataset"):
        self.trajectories = list(trajectories)
        if not self.trajectories:
            raise ValueError("a dataset needs at least one trajectory")
        self.name = name

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TrajectoryDataset(self.trajectories[index], name=self.name)
        return self.trajectories[index]

    def __repr__(self) -> str:
        return f"TrajectoryDataset(name={self.name!r}, size={len(self)})"

    @property
    def bounding_box(self) -> BoundingBox:
        boxes = [t.bounding_box for t in self.trajectories]
        return BoundingBox(
            min(b.min_lon for b in boxes), min(b.min_lat for b in boxes),
            max(b.max_lon for b in boxes), max(b.max_lat for b in boxes),
        )

    @property
    def has_time(self) -> bool:
        return all(t.has_time for t in self.trajectories)

    def point_arrays(self, spatial_only: bool = False) -> list[np.ndarray]:
        """Raw point arrays for every trajectory (the format distances expect)."""
        if spatial_only:
            return [t.coordinates for t in self.trajectories]
        return [t.points for t in self.trajectories]

    def lengths(self) -> np.ndarray:
        """Number of points per trajectory."""
        return np.array([len(t) for t in self.trajectories])

    def statistics(self) -> dict:
        """Summary statistics used in dataset tables."""
        lengths = self.lengths()
        travelled = np.array([t.length() for t in self.trajectories])
        return {
            "size": len(self),
            "mean_points": float(lengths.mean()),
            "min_points": int(lengths.min()),
            "max_points": int(lengths.max()),
            "mean_travelled_length": float(travelled.mean()),
            "has_time": self.has_time,
        }

    def split(self, fractions: Sequence[float], seed: int = 0) -> list["TrajectoryDataset"]:
        """Random split into parts proportional to ``fractions`` (must sum to <= 1)."""
        if any(f <= 0 for f in fractions):
            raise ValueError("fractions must be positive")
        if sum(fractions) > 1.0 + 1e-9:
            raise ValueError("fractions must sum to at most 1")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        counts = [int(round(f * len(self))) for f in fractions]
        parts = []
        start = 0
        for index, count in enumerate(counts):
            stop = start + count if index < len(counts) - 1 else min(start + count, len(self))
            chosen = [self.trajectories[i] for i in order[start:stop]]
            parts.append(TrajectoryDataset(chosen, name=f"{self.name}-part{index}"))
            start = stop
        return parts

    def subset(self, indices: Sequence[int], name: str | None = None) -> "TrajectoryDataset":
        """Dataset restricted to the given indices (order preserved)."""
        chosen = [self.trajectories[i] for i in indices]
        return TrajectoryDataset(chosen, name=name or f"{self.name}-subset")

    def map(self, func, name: str | None = None) -> "TrajectoryDataset":
        """Apply ``func`` to every trajectory and wrap the results."""
        return TrajectoryDataset([func(t) for t in self.trajectories],
                                 name=name or self.name)
