"""Coordinate normalisation and simple trajectory cleaning utilities."""

from __future__ import annotations

import numpy as np

from .trajectory import BoundingBox, Trajectory, TrajectoryDataset

__all__ = ["Normalizer", "remove_stationary_points", "clip_to_box"]


class Normalizer:
    """Affine normalisation of trajectory coordinates to the unit square.

    Fitted on a dataset (or bounding box), it maps (lon, lat) into ``[0, 1]²`` and can
    invert the mapping.  Timestamps, when present, are min-max normalised separately.
    """

    def __init__(self, bounding_box: BoundingBox, time_range: tuple[float, float] | None = None):
        self.bounding_box = bounding_box
        self.time_range = time_range

    @staticmethod
    def fit(dataset: TrajectoryDataset) -> "Normalizer":
        """Fit a normaliser to a dataset's spatial (and temporal) extent."""
        time_range = None
        if dataset.has_time:
            times = np.concatenate([t.timestamps for t in dataset])
            time_range = (float(times.min()), float(times.max()))
        return Normalizer(dataset.bounding_box, time_range)

    def transform_points(self, points: np.ndarray) -> np.ndarray:
        """Normalise a raw point array."""
        points = np.asarray(points, dtype=np.float64).copy()
        box = self.bounding_box
        points[:, 0] = (points[:, 0] - box.min_lon) / max(box.width, 1e-12)
        points[:, 1] = (points[:, 1] - box.min_lat) / max(box.height, 1e-12)
        if points.shape[1] == 3:
            if self.time_range is None:
                raise ValueError("normaliser was fitted without a time range")
            start, stop = self.time_range
            points[:, 2] = (points[:, 2] - start) / max(stop - start, 1e-12)
        return points

    def inverse_transform_points(self, points: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform_points`."""
        points = np.asarray(points, dtype=np.float64).copy()
        box = self.bounding_box
        points[:, 0] = points[:, 0] * max(box.width, 1e-12) + box.min_lon
        points[:, 1] = points[:, 1] * max(box.height, 1e-12) + box.min_lat
        if points.shape[1] == 3:
            if self.time_range is None:
                raise ValueError("normaliser was fitted without a time range")
            start, stop = self.time_range
            points[:, 2] = points[:, 2] * max(stop - start, 1e-12) + start
        return points

    def transform(self, trajectory: Trajectory) -> Trajectory:
        """Normalise one trajectory."""
        return Trajectory(self.transform_points(trajectory.points),
                          trajectory.trajectory_id, dict(trajectory.metadata))

    def transform_dataset(self, dataset: TrajectoryDataset) -> TrajectoryDataset:
        """Normalise every trajectory of a dataset."""
        return dataset.map(self.transform, name=f"{dataset.name}-normalized")


def remove_stationary_points(trajectory: Trajectory, min_step: float = 1e-6) -> Trajectory:
    """Drop consecutive points closer than ``min_step`` (GPS idling)."""
    points = trajectory.points
    keep = [0]
    for index in range(1, len(points)):
        step = np.linalg.norm(points[index, :2] - points[keep[-1], :2])
        if step >= min_step:
            keep.append(index)
    return Trajectory(points[keep], trajectory.trajectory_id, dict(trajectory.metadata))


def clip_to_box(trajectory: Trajectory, box: BoundingBox) -> Trajectory | None:
    """Keep only points inside ``box``; returns None if nothing remains."""
    points = trajectory.points
    inside = np.array([box.contains(lon, lat) for lon, lat in points[:, :2]])
    if not inside.any():
        return None
    return Trajectory(points[inside], trajectory.trajectory_id, dict(trajectory.metadata))
