"""Quadtree spatial index (TrajGAT preprocessing).

TrajGAT converts each trajectory into a graph whose nodes are the trajectory points
plus the quadtree cells that contain them, then runs graph attention over that
structure.  This module provides the quadtree itself and the trajectory-to-graph
conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .trajectory import BoundingBox, Trajectory, TrajectoryDataset

__all__ = ["QuadTreeNode", "QuadTree", "trajectory_graph"]


@dataclass
class QuadTreeNode:
    """One node (cell) of the quadtree."""

    box: BoundingBox
    depth: int
    node_id: int
    children: list["QuadTreeNode"] = field(default_factory=list)
    count: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.box.min_lon + self.box.max_lon),
                0.5 * (self.box.min_lat + self.box.max_lat))


class QuadTree:
    """Point-region quadtree built over a set of points.

    Cells split when they hold more than ``max_points`` points and are shallower than
    ``max_depth``.  Every node gets a stable integer id usable as an embedding token.
    """

    def __init__(self, bounding_box: BoundingBox, max_points: int = 16, max_depth: int = 6):
        if max_points <= 0 or max_depth <= 0:
            raise ValueError("max_points and max_depth must be positive")
        self.max_points = max_points
        self.max_depth = max_depth
        self._nodes: list[QuadTreeNode] = []
        self.root = self._new_node(bounding_box, depth=0)

    # ---------------------------------------------------------------- building
    def _new_node(self, box: BoundingBox, depth: int) -> QuadTreeNode:
        node = QuadTreeNode(box=box, depth=depth, node_id=len(self._nodes))
        self._nodes.append(node)
        return node

    def _split(self, node: QuadTreeNode) -> None:
        box = node.box
        mid_lon = 0.5 * (box.min_lon + box.max_lon)
        mid_lat = 0.5 * (box.min_lat + box.max_lat)
        quadrants = [
            BoundingBox(box.min_lon, box.min_lat, mid_lon, mid_lat),
            BoundingBox(mid_lon, box.min_lat, box.max_lon, mid_lat),
            BoundingBox(box.min_lon, mid_lat, mid_lon, box.max_lat),
            BoundingBox(mid_lon, mid_lat, box.max_lon, box.max_lat),
        ]
        node.children = [self._new_node(quadrant, node.depth + 1) for quadrant in quadrants]

    def _child_for(self, node: QuadTreeNode, lon: float, lat: float) -> QuadTreeNode:
        mid_lon = 0.5 * (node.box.min_lon + node.box.max_lon)
        mid_lat = 0.5 * (node.box.min_lat + node.box.max_lat)
        index = (1 if lon >= mid_lon else 0) + (2 if lat >= mid_lat else 0)
        return node.children[index]

    def insert(self, lon: float, lat: float) -> QuadTreeNode:
        """Insert a point; returns the leaf cell it lands in."""
        node = self.root
        node.count += 1
        while True:
            if node.is_leaf:
                if node.count > self.max_points and node.depth < self.max_depth:
                    self._split(node)
                else:
                    return node
            node = self._child_for(node, lon, lat)
            node.count += 1

    @staticmethod
    def for_dataset(dataset: TrajectoryDataset, max_points: int = 16,
                    max_depth: int = 6, margin: float = 1e-6) -> "QuadTree":
        """Build a quadtree over all points of a dataset."""
        tree = QuadTree(dataset.bounding_box.expanded(margin), max_points, max_depth)
        for trajectory in dataset:
            for lon, lat in trajectory.coordinates:
                tree.insert(lon, lat)
        return tree

    # ----------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[QuadTreeNode]:
        return list(self._nodes)

    def leaf_for(self, lon: float, lat: float) -> QuadTreeNode:
        """Leaf cell containing a point (without inserting it)."""
        node = self.root
        while not node.is_leaf:
            node = self._child_for(node, lon, lat)
        return node

    def path_to_leaf(self, lon: float, lat: float) -> list[QuadTreeNode]:
        """Root-to-leaf chain of cells containing a point."""
        node = self.root
        path = [node]
        while not node.is_leaf:
            node = self._child_for(node, lon, lat)
            path.append(node)
        return path

    def depth(self) -> int:
        """Maximum depth among all nodes."""
        return max(node.depth for node in self._nodes)


def trajectory_graph(trajectory: Trajectory, tree: QuadTree) -> tuple[np.ndarray, np.ndarray]:
    """Build TrajGAT's per-trajectory graph.

    Nodes are the trajectory points followed by the distinct quadtree leaves they fall
    into.  Edges connect consecutive trajectory points, each point to its leaf cell,
    and leaves that share consecutive points.  Returns ``(features, adjacency)`` where
    features are ``(x, y, depth_flag)`` rows (depth_flag is 0 for points, normalised
    depth for cells) and adjacency is a dense boolean matrix with self-loops.
    """
    coords = trajectory.coordinates
    leaves = [tree.leaf_for(lon, lat) for lon, lat in coords]
    distinct: list[QuadTreeNode] = []
    leaf_index: dict[int, int] = {}
    for leaf in leaves:
        if leaf.node_id not in leaf_index:
            leaf_index[leaf.node_id] = len(distinct)
            distinct.append(leaf)

    num_points = len(coords)
    num_nodes = num_points + len(distinct)
    features = np.zeros((num_nodes, 3))
    features[:num_points, :2] = coords
    max_depth = max(tree.depth(), 1)
    for offset, leaf in enumerate(distinct):
        features[num_points + offset, :2] = leaf.center
        features[num_points + offset, 2] = leaf.depth / max_depth

    adjacency = np.eye(num_nodes, dtype=bool)
    for i in range(num_points - 1):
        adjacency[i, i + 1] = adjacency[i + 1, i] = True
    for i, leaf in enumerate(leaves):
        j = num_points + leaf_index[leaf.node_id]
        adjacency[i, j] = adjacency[j, i] = True
    for i in range(num_points - 1):
        a = num_points + leaf_index[leaves[i].node_id]
        b = num_points + leaf_index[leaves[i + 1].node_id]
        adjacency[a, b] = adjacency[b, a] = True
    return features, adjacency
