"""Integrating the LH-plugin with different base encoders (model-agnostic usage).

The LH-plugin does not modify the base model: the same plugin wraps a grid-GRU
encoder (Neutraj-style), a quadtree graph-attention encoder (TrajGAT-style) and an
LSTM encoder (Traj2SimVec-style).  This example trains each pairing briefly and
reports the accuracy improvement, plus demonstrates the ablation variants.

Run with:  python examples/plugin_integration.py
"""

from __future__ import annotations

from repro import LHPlugin, LHPluginConfig, generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.eval import evaluate_retrieval
from repro.models import get_model
from repro.training import SimilarityTrainer

MODELS = ("neutraj", "trajgat", "traj2simvec")
VARIANTS = ("original", "lh-vanilla", "lh-cosh", "fusion-dist")


def make_plugin(variant: str) -> LHPlugin | None:
    if variant == "original":
        return None
    return LHPlugin(LHPluginConfig.ablation_variant(variant))


def main() -> None:
    dataset = generate_dataset("porto", size=30, seed=11)
    truth = normalize_matrix(
        pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "dtw"))

    print("Model-agnostic integration: the same plugin wraps three different encoders\n")
    for model_name in MODELS:
        print(f"=== base model: {model_name} ===")
        for variant in ("original", "fusion-dist"):
            encoder = get_model(model_name).build(dataset, embedding_dim=16,
                                                  hidden_dim=16, seed=1)
            trainer = SimilarityTrainer(encoder, plugin=make_plugin(variant),
                                        learning_rate=5e-3, seed=1)
            trainer.fit(dataset, truth, epochs=2)
            metrics = evaluate_retrieval(trainer.model_distance_matrix(dataset), truth,
                                         hr_ks=(10,), ndcg_ks=(10,))
            print(f"   {variant:<12} HR@10={metrics['hr@10']:.3f} "
                  f"NDCG@10={metrics['ndcg@10']:.3f}")
        print()

    print("Ablation variants on the meanpool encoder (cf. Table VI):")
    for variant in VARIANTS:
        encoder = get_model("meanpool").build(dataset, embedding_dim=16, seed=1)
        trainer = SimilarityTrainer(encoder, plugin=make_plugin(variant),
                                    learning_rate=5e-3, seed=1)
        trainer.fit(dataset, truth, epochs=4)
        metrics = evaluate_retrieval(trainer.model_distance_matrix(dataset), truth,
                                     hr_ks=(10,), ndcg_ks=(10,))
        print(f"   {variant:<12} HR@10={metrics['hr@10']:.3f}")


if __name__ == "__main__":
    main()
