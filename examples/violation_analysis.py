"""Analyse triangle-inequality violations of trajectory similarity measures.

The motivation of the LH-plugin (Section I and Table I of the paper) is that common
trajectory measures — DTW, SSPD, EDR — violate the triangle inequality on a sizeable
fraction of trajectory triplets, which Euclidean embeddings cannot represent.  This
example reproduces that analysis on synthetic city presets and contrasts it with two
true metrics (Hausdorff, discrete Fréchet) that never violate.

Run with:  python examples/violation_analysis.py
"""

from __future__ import annotations

from repro import generate_dataset
from repro.distances import METRIC_PROPERTIES, normalize_matrix, pairwise_distance_matrix
from repro.violation import violation_report

PRESETS = ("chengdu", "porto", "tdrive", "osm")
MEASURES = ("dtw", "sspd", "edr", "hausdorff", "frechet")
MEASURE_KWARGS = {"edr": {"epsilon": 0.25}}


def main() -> None:
    print(f"{'preset':<10} {'measure':<10} {'metric?':<8} {'RV':>8} {'ARVS':>8}")
    print("-" * 48)
    for preset in PRESETS:
        dataset = generate_dataset(preset, size=35, seed=3)
        trajectories = dataset.point_arrays(spatial_only=True)
        for measure in MEASURES:
            matrix = normalize_matrix(
                pairwise_distance_matrix(trajectories, measure,
                                         **MEASURE_KWARGS.get(measure, {})))
            report = violation_report(matrix, max_triplets=3000, seed=0)
            is_metric = "yes" if METRIC_PROPERTIES[measure] else "no"
            print(f"{preset:<10} {measure:<10} {is_metric:<8} "
                  f"{report['ratio_of_violation']:>7.1%} "
                  f"{report['average_relative_violation']:>8.3f}")
        print()
    print("True metrics (Hausdorff, discrete Fréchet) never violate; the measures the")
    print("paper targets (DTW, SSPD, EDR) do — that is the gap the LH-plugin closes.")


if __name__ == "__main__":
    main()
