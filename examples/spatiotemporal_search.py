"""Spatio-temporal similarity search with ST2Vec + LH-plugin.

Timestamped trajectories (the T-Drive-like preset) are compared under the TP
spatio-temporal measure.  The example trains the ST2Vec-style two-stream encoder with
the plugin, pre-embeds the database once and then answers similarity queries from the
pre-embedded vectors — the deployment pattern the paper's efficiency study assumes.

Run with:  python examples/spatiotemporal_search.py
"""

from __future__ import annotations

import numpy as np

from repro import LHPlugin, LHPluginConfig, generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.eval import evaluate_retrieval, retrieval_latency
from repro.models import ST2VecEncoder
from repro.training import SimilarityTrainer
from repro.data import Normalizer


def main() -> None:
    print("1. Generating timestamped trajectories (T-Drive-like preset) ...")
    dataset = generate_dataset("tdrive", size=30, seed=5, with_time=True)

    print("2. Computing the TP spatio-temporal ground truth ...")
    truth = normalize_matrix(
        pairwise_distance_matrix(dataset.point_arrays(spatial_only=False), "tp"))

    print("3. Training ST2Vec with the LH-plugin ...")
    plugin = LHPlugin(LHPluginConfig(point_features=3))
    encoder = ST2VecEncoder.build(dataset, embedding_dim=16, hidden_dim=16, seed=2)
    trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=5e-3, seed=2)
    trainer.fit(dataset, truth, epochs=2)

    metrics = evaluate_retrieval(trainer.model_distance_matrix(dataset), truth,
                                 hr_ks=(5, 10), ndcg_ks=(10,))
    print("   retrieval quality:", {k: round(v, 3) for k, v in metrics.items()})

    print("4. Pre-embedding the database and timing online retrieval ...")
    embeddings = trainer.embed(dataset)
    normalizer = Normalizer.fit(dataset)
    sequences = [normalizer.transform_points(t.points) for t in dataset]
    report = retrieval_latency(embeddings[:5], embeddings, k=5, plugin=plugin,
                               query_sequences=sequences[:5], database_sequences=sequences)
    print(f"   top-5 retrieval for 5 queries: {report['latency_seconds'] * 1e3:.2f} ms, "
          f"database memory {report['memory_bytes'] / 1024:.1f} KiB")

    print("5. Nearest neighbours of trajectory #0 under the fused distance:")
    database = plugin.embed_database(embeddings, sequences)
    distances = plugin.distance_matrix(database)[0]
    distances[0] = np.inf
    for rank, index in enumerate(np.argsort(distances)[:3], start=1):
        print(f"   rank {rank}: trajectory #{index} "
              f"(fused distance {distances[index]:.4f}, TP truth {truth[0, index]:.4f})")


if __name__ == "__main__":
    main()
