"""Spatio-temporal similarity search served by the search subsystem.

Quickstart for ``repro.search``: timestamped trajectories (the T-Drive-like
preset) are indexed once, then top-k queries under the TP spatio-temporal
measure are answered by a :class:`~repro.search.SearchService` — micro-batched,
cached, and pruned with per-measure lower bounds instead of a hand-rolled
brute-force scan::

    from repro.search import SearchService
    service = SearchService(dataset.point_arrays(), measure="tp", k=5)
    result = service.search(query)            # exact: matches knn_from_matrix
    result.indices, result.distances, service.stats()

The example then trains the ST2Vec-style encoder with the LH-plugin and answers
the same queries from embedding space — exact brute-force matmul top-k plus the
IVF-style approximate index with measured recall — the deployment pattern the
paper's efficiency study assumes.

Run with:  python examples/spatiotemporal_search.py
"""

from __future__ import annotations

from repro import LHPlugin, LHPluginConfig, generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.eval import evaluate_retrieval
from repro.models import ST2VecEncoder
from repro.search import IVFEmbeddingIndex, SearchService, embedding_topk, recall_at_k
from repro.training import SimilarityTrainer


def main() -> None:
    print("1. Generating timestamped trajectories (T-Drive-like preset) ...")
    dataset = generate_dataset("tdrive", size=30, seed=5, with_time=True)
    trajectories = dataset.point_arrays(spatial_only=False)

    print("2. Serving exact TP top-k queries through the SearchService ...")
    service = SearchService(trajectories, measure="tp", k=5)
    results = service.search_many(trajectories[:5], exclude_self=True)
    stats = service.stats()
    print(f"   5 queries in {stats['total_latency_seconds'] * 1e3:.2f} ms, "
          f"{stats['pruned_fraction'] * 100:.0f}% of candidates pruned by lower bounds")
    neighbours = results[0]
    print("   nearest neighbours of trajectory #0:",
          {int(i): round(float(d), 4)
           for i, d in zip(neighbours.indices, neighbours.distances)})

    print("3. Computing the TP ground truth and training ST2Vec with the LH-plugin ...")
    truth = normalize_matrix(pairwise_distance_matrix(trajectories, "tp"))
    plugin = LHPlugin(LHPluginConfig(point_features=3))
    encoder = ST2VecEncoder.build(dataset, embedding_dim=16, hidden_dim=16, seed=2)
    trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=5e-3, seed=2)
    trainer.fit(dataset, truth, epochs=2)
    metrics = evaluate_retrieval(trainer.model_distance_matrix(dataset), truth,
                                 hr_ks=(5, 10), ndcg_ks=(10,))
    print("   retrieval quality:", {k: round(v, 3) for k, v in metrics.items()})

    print("4. Answering the same queries from pre-computed embeddings ...")
    embeddings = trainer.embed(dataset)
    # k=6 then drop each query itself, so the sets match the exclude_self searches.
    exact_indices, _ = embedding_topk(embeddings[:5], embeddings, k=6)
    exact_top5 = [[i for i in row.tolist() if i != q][:5]
                  for q, row in enumerate(exact_indices)]
    ivf = IVFEmbeddingIndex(embeddings, num_lists=4, seed=0)
    approximate_indices, _ = ivf.search(embeddings[:5], k=6, nprobe=2)
    recall = recall_at_k(approximate_indices, exact_indices)
    print(f"   IVF (4 lists, nprobe=2) recall@6 vs exact matmul top-6: {recall:.2f}")

    print("5. Embedding top-5 of trajectory #0 vs the exact TP top-5:")
    print(f"   embedding: {exact_top5[0]}")
    print(f"   TP truth:  {neighbours.indices.tolist()} "
          f"(overlap {len(set(exact_top5[0]) & set(neighbours.indices))}/5)")


if __name__ == "__main__":
    main()
