"""Quickstart: train a trajectory encoder with the LH-plugin and run a similarity query.

This example walks through the whole pipeline on a small synthetic city:

1. generate a taxi-like trajectory dataset,
2. compute the DTW ground-truth distance matrix,
3. train a base encoder twice — once as-is (Euclidean) and once with the LH-plugin,
4. compare retrieval accuracy (HR@k / NDCG) and run a top-5 similarity query.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import LHPlugin, LHPluginConfig, generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.eval import evaluate_retrieval
from repro.models import MeanPoolEncoder
from repro.training import SimilarityTrainer


def train(dataset, truth, plugin=None, epochs=5, seed=0):
    """Train one encoder (optionally with the plugin) and return its distance matrix."""
    encoder = MeanPoolEncoder.build(dataset, embedding_dim=16, seed=seed)
    trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=5e-3, seed=seed)
    trainer.fit(dataset, truth, epochs=epochs)
    return trainer, trainer.model_distance_matrix(dataset)


def main() -> None:
    print("1. Generating a synthetic Chengdu-like dataset ...")
    dataset = generate_dataset("chengdu", size=50, seed=7)
    print(f"   {len(dataset)} trajectories, "
          f"{dataset.statistics()['mean_points']:.1f} points on average")

    print("2. Computing the DTW ground truth ...")
    truth = normalize_matrix(
        pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "dtw"))

    print("3. Training the original (Euclidean) pipeline ...")
    _, euclidean_matrix = train(dataset, truth)

    print("4. Training the same encoder with the LH-plugin ...")
    plugin = LHPlugin(LHPluginConfig(beta=1.0, compression=4.0))
    trainer, fused_matrix = train(dataset, truth, plugin=plugin)

    print("5. Retrieval accuracy (higher is better):")
    original_metrics = evaluate_retrieval(euclidean_matrix, truth, hr_ks=(5, 10), ndcg_ks=(10,))
    plugin_metrics = evaluate_retrieval(fused_matrix, truth, hr_ks=(5, 10), ndcg_ks=(10,))
    for key in original_metrics:
        print(f"   {key:>8}:  original={original_metrics[key]:.3f}  "
              f"LH-plugin={plugin_metrics[key]:.3f}")

    print("6. Top-5 most similar trajectories to trajectory #0 (LH-plugin distances):")
    query_distances = fused_matrix[0].copy()
    query_distances[0] = np.inf
    top5 = np.argsort(query_distances)[:5]
    for rank, index in enumerate(top5, start=1):
        print(f"   rank {rank}: trajectory #{index} (distance {fused_matrix[0, index]:.4f}, "
              f"DTW ground truth {truth[0, index]:.4f})")


if __name__ == "__main__":
    main()
