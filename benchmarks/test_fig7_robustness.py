"""Benchmark for Figure 7: training-curve robustness (original vs LH-plugin).

Expected shape: the plugin's per-epoch accuracy curve is at least as smooth as the
original's (smaller epoch-to-epoch fluctuation) and ends at a comparable or better
final accuracy.
"""

from repro.experiments import ExperimentSettings, fig7_robustness as experiment

from conftest import run_once


def test_fig7_robustness(benchmark, save_result):
    settings = ExperimentSettings(model="meanpool", dataset_size=35, epochs=6, seed=0)
    result = run_once(benchmark, lambda: experiment.run(settings))
    table = experiment.format_result(result)
    save_result("fig7_robustness", table)

    original = result["curves"]["original"]
    plugin = result["curves"]["fusion-dist"]
    assert len(original["curve"]) == len(plugin["curve"]) == settings.epochs
    assert plugin["final"] >= original["final"] - 0.1
