"""Micro-benchmark: the persistent serving fast path.

Two claims from the serving PR, each verified for exactness before being timed:

* **Arena reuse** (part A) — under the ``shared`` engine strategy, repeated
  queries against the same database dispatch refinement batches against one
  cached shared-memory segment instead of packing a fresh arena per call.
  Throughput with reuse must be ≥2× the no-reuse path at the default scale,
  and every result is bit-identical to the serial no-cache engine.
* **Incremental mutation** (part B) — inserting ≤5% of the fleet into a live
  sharded :class:`TrajectoryIndex` must be ≥5× faster than rebuilding the
  index from scratch, with ``knn_search`` over the mutated index bit-identical
  to a fresh build (evict latency is recorded alongside).

Results land in ``benchmarks/results/serving_speedup.json``.  Run with::

    PYTHONPATH=src python benchmarks/serving_speedup.py [--size 3072] [--strict]

Wall-clock ratios are machine-dependent, so ``--strict`` gates them only at
the default scale or above; exactness is gated at every scale.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.data import generate_dataset
from repro.engine import MatrixEngine, live_arena_names, reset_shared_pool
from repro.engine.arena_cache import get_arena_cache
from repro.obs import snapshot as obs_snapshot
from repro.search import SearchService, TrajectoryIndex, knn_search

RESULTS_PATH = Path(__file__).parent / "results" / "serving_speedup.json"

#: Acceptance floors (gated with --strict at default scale).
REUSE_FLOOR = 2.0
INSERT_FLOOR = 5.0


def _short_trajectories(preset: str, size: int, max_points: int, seed: int = 0):
    """A fleet of short trajectories: packing cost dominates DP compute, which
    is exactly the regime the arena cache exists for."""
    dataset = generate_dataset(preset, size=size, seed=seed)
    return [np.ascontiguousarray(points[:max_points])
            for points in dataset.point_arrays(spatial_only=True)]


def benchmark_arena_reuse(trajectories, args) -> dict:
    """Steady-state repeated-query throughput, reuse vs no-reuse.

    Both services are warmed once (worker spawn, the reuse path's one-time
    arena pack miss) and then timed in *interleaved* rounds — alternating the
    two paths round by round cancels machine drift that back-to-back blocks
    would attribute to whichever path ran second — with the median round
    counting for each.
    """
    queries = trajectories[:args.queries]
    k = min(args.k, len(trajectories) - 1)
    refine_batch = args.refine_batch or len(trajectories)
    shared = MatrixEngine(strategy="shared", cache=None,
                          chunk_size=args.chunk_size, max_workers=args.workers)
    serial = MatrixEngine(strategy="serial", cache=None)

    # Ground truth: serial engine, caching off everywhere.
    index = TrajectoryIndex(trajectories)
    reference = [knn_search(index, query, k, engine=serial, exclude=i,
                            batch_size=refine_batch, arena=False)
                 for i, query in enumerate(queries)]

    cache = get_arena_cache()
    cache.clear()
    before = (cache.hits, cache.misses)

    def service(arena_reuse: bool) -> SearchService:
        return SearchService(trajectories, measure="dtw", k=k, engine=shared,
                             refine_batch_size=refine_batch,
                             cache_entries=0, arena_reuse=arena_reuse)

    cold_service, reuse_service = service(False), service(True)
    try:
        cold_service.search_many(queries, exclude_self=True)
        served = reuse_service.search_many(queries, exclude_self=True)
        cold_samples, reuse_samples = [], []
        for _ in range(args.rounds):
            start = time.perf_counter()
            cold_service.search_many(queries, exclude_self=True)
            cold_samples.append(time.perf_counter() - start)
            start = time.perf_counter()
            served = reuse_service.search_many(queries, exclude_self=True)
            reuse_samples.append(time.perf_counter() - start)
    finally:
        cold_service.close()
        reuse_service.close()
    cold_seconds = float(np.median(cold_samples))
    reuse_seconds = float(np.median(reuse_samples))
    hits = cache.hits - before[0]
    misses = cache.misses - before[1]
    dispatched = shared.last_dispatch.get("strategy") == "shared" and hits > 0

    exact = all(np.array_equal(result.indices, ref.indices)
                and np.array_equal(result.distances, ref.distances)
                for result, ref in zip(served, reference))
    queries_total = args.queries
    return {
        "exact_match": exact,
        "dispatched": dispatched,
        "arena_hits": hits,
        "arena_misses": misses,
        "no_reuse_seconds": cold_seconds,
        "reuse_seconds": reuse_seconds,
        "no_reuse_qps": queries_total / max(cold_seconds, 1e-12),
        "reuse_qps": queries_total / max(reuse_seconds, 1e-12),
        "throughput_speedup": cold_seconds / max(reuse_seconds, 1e-12),
        "leaked_arenas": sorted(live_arena_names()),
    }


def benchmark_incremental_mutation(trajectories, args) -> dict:
    delta_size = max(1, len(trajectories) // 20)  # 5% of the fleet
    base, delta = trajectories[:-delta_size], trajectories[-delta_size:]
    serial = MatrixEngine(strategy="serial", cache=None)
    k = min(args.k, len(trajectories) - 1)

    def median_of(func, repeats=5):
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            func()
            samples.append(time.perf_counter() - start)
        return float(np.median(samples))

    rebuild_seconds = median_of(lambda: TrajectoryIndex(trajectories).fingerprint)

    # Time the insert itself: a fresh pre-warmed base index per repeat (built
    # outside the clock, as a live deployment's index would already exist),
    # then insert the delta and refresh the fingerprint under the clock.
    insert_samples = []
    for _ in range(5):
        index = TrajectoryIndex(base)
        index.fingerprint
        start = time.perf_counter()
        index.insert(delta)
        index.fingerprint
        insert_samples.append(time.perf_counter() - start)
    insert_seconds = max(float(np.median(insert_samples)), 1e-9)

    mutated = TrajectoryIndex(base)
    mutated.fingerprint
    mutated.insert(delta)
    evict_ids = list(range(0, delta_size))
    evict_seconds = median_of(lambda: TrajectoryIndex(trajectories).evict(evict_ids))

    fresh = TrajectoryIndex(trajectories)
    exact = mutated.fingerprint == fresh.fingerprint
    for i, query in enumerate(trajectories[:args.queries]):
        got = knn_search(mutated, query, k, engine=serial, exclude=i, arena=False)
        want = knn_search(fresh, query, k, engine=serial, exclude=i, arena=False)
        exact = exact and np.array_equal(got.indices, want.indices) \
            and np.array_equal(got.distances, want.distances)
    return {
        "exact_match": exact,
        "fleet_size": len(trajectories),
        "delta_size": delta_size,
        "rebuild_seconds": rebuild_seconds,
        "insert_seconds": insert_seconds,
        "evict_seconds": evict_seconds,
        "insert_speedup": rebuild_seconds / insert_seconds,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=3072,
                        help="fleet size (default 3072)")
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=7,
                        help="timed interleaved passes over the query set, "
                             "after one warm-up pass; the median round counts "
                             "(default 7)")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--max-points", type=int, default=4,
                        help="truncate trajectories to this many points; the "
                             "arena cache targets exactly the many-short-"
                             "trajectories regime where packing rivals compute")
    parser.add_argument("--chunk-size", type=int, default=384)
    parser.add_argument("--refine-batch", type=int, default=None,
                        help="refinement batch (default: the whole fleet, one "
                             "dispatch per query)")
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--preset", default="chengdu")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on an exactness failure at any "
                             "scale, or a missed speedup floor at the default "
                             "scale or above")
    args = parser.parse_args()
    args.refine_batch = args.refine_batch or args.size

    trajectories = _short_trajectories(args.preset, args.size, args.max_points)
    reuse = benchmark_arena_reuse(trajectories, args)
    mutation = benchmark_incremental_mutation(trajectories, args)
    get_arena_cache().clear()
    reset_shared_pool(args.workers)

    record = {
        "preset": args.preset,
        "size": args.size,
        "num_queries": args.queries,
        "rounds": args.rounds,
        "k": args.k,
        "max_points": args.max_points,
        "chunk_size": args.chunk_size,
        "refine_batch": args.refine_batch,
        "platform": platform.platform(),
        "arena_reuse": reuse,
        "incremental_mutation": mutation,
        "telemetry": obs_snapshot(),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print(f"n={args.size} ({args.preset}, <= {args.max_points} points), "
          f"{args.queries} queries x {args.rounds} rounds, k={args.k}")
    print(f"  arena reuse : {reuse['no_reuse_qps']:.1f} -> {reuse['reuse_qps']:.1f} "
          f"qps ({reuse['throughput_speedup']:.2f}x, hits={reuse['arena_hits']}, "
          f"dispatched={reuse['dispatched']}, exact={reuse['exact_match']})")
    print(f"  insert {mutation['delta_size']}/{mutation['fleet_size']} : "
          f"{mutation['insert_seconds'] * 1e3:.2f} ms vs rebuild "
          f"{mutation['rebuild_seconds'] * 1e3:.2f} ms "
          f"({mutation['insert_speedup']:.1f}x, exact={mutation['exact_match']}); "
          f"evict {mutation['evict_seconds'] * 1e3:.2f} ms")
    print(f"saved {RESULTS_PATH}")

    failures = []
    if not reuse["exact_match"]:
        failures.append("arena-reuse results differ from the serial reference")
    if not mutation["exact_match"]:
        failures.append("mutated index differs from a fresh build")
    if reuse["leaked_arenas"]:
        failures.append(f"leaked shared-memory arenas: {reuse['leaked_arenas']}")
    # Wall-clock floors only count at the calibrated scale, and the reuse
    # floor only when the shared path actually dispatched with cache hits —
    # otherwise the two timed runs did identical in-process work.
    if args.size >= 3072:
        if reuse["dispatched"] and reuse["throughput_speedup"] < REUSE_FLOOR:
            failures.append(f"arena-reuse throughput below {REUSE_FLOOR}x "
                            f"({reuse['throughput_speedup']:.2f}x)")
        if mutation["insert_speedup"] < INSERT_FLOOR:
            failures.append(f"incremental insert below {INSERT_FLOOR}x "
                            f"({mutation['insert_speedup']:.1f}x)")
    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
