"""Micro-benchmark: compiled (numba) kernel backend vs the numpy reference.

Two questions, one script:

1. **Exactness** — the compiled per-pair DP kernels must agree with the numpy
   wavefront kernels bitwise for the DP measures (and to 1e-12 relative for
   the mean-based SSPD/TP, whose summation order differs), with and without
   abandon thresholds.  This is checked *always*, whichever backend is
   installed — without numba the compiled kernels run as pure Python through
   the no-op ``njit`` stub, which exercises the same arithmetic.
2. **Speed** — with numba installed, the compiled backend must beat numpy by
   ≥3× wall-clock on the n=200 DTW matrix build, and τ-abandoning kNN must be
   strictly *faster* than non-abandoning (latency_ratio > 1.0) with
   bit-identical results vs ``knn_from_matrix`` — the cell-count win finally
   cashing out as latency.  Without numba the speed section is skipped (and
   recorded as such), so the benchmark stays green on numpy-only boxes.

Run with::

    PYTHONPATH=src python benchmarks/backend_speedup.py [--size 200] [--strict]

Results land in ``benchmarks/results/backend_speedup.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.data import generate_dataset
from repro.distances import knn_from_matrix
from repro.engine import MatrixEngine, backend_available, backend_provenance
from repro.engine.backends import numba_kernels
from repro.engine.kernels import get_batch_kernel
from repro.eval import matrix_build_latency
from repro.search import TrajectoryIndex, knn_search
from repro.obs import snapshot as obs_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "backend_speedup.json"

#: Minimum compiled-vs-numpy wall-clock speedup on the n=200 DTW matrix build.
SPEEDUP_FLOOR = 3.0

#: Measures whose compiled kernels must agree with numpy *bitwise*.  SSPD and
#: TP average sub-distances with ``np.mean`` (pairwise summation) on the numpy
#: side but sequentially in the jitted loop, so they get 1e-12 relative.
BITWISE_MEASURES = ("dtw", "erp", "edr", "lcss", "frechet", "dita", "hausdorff")
CLOSE_MEASURES = ("sspd", "tp")

_MEASURE_KWARGS = {"edr": {"epsilon": 0.25}, "lcss": {"epsilon": 0.25}}
_NEEDS_TIME = {"dita", "tp"}


def _reference_values(measure, pairs_a, pairs_b, thresholds=None):
    """Numpy-side values: the batch kernel when one exists, else the serial
    reference loop (hausdorff/sspd/tp have no numpy batch kernel)."""
    kwargs = _MEASURE_KWARGS.get(measure, {})
    batch = get_batch_kernel(measure)
    if batch is not None:
        if thresholds is not None:
            return np.asarray(batch(pairs_a, pairs_b, thresholds=thresholds, **kwargs))
        return np.asarray(batch(pairs_a, pairs_b, **kwargs))
    from repro.distances.base import get_distance

    func = get_distance(measure)
    return np.array([func(a, b, **kwargs) for a, b in zip(pairs_a, pairs_b)])


def check_exactness(seed: int = 0) -> dict:
    """Cross-backend parity on a mixed-length pair set, thresholds included."""
    rng = np.random.default_rng(seed)
    trajs = [rng.random((n, 3)) for n in (5, 17, 9, 2, 23, 11, 1, 8)]
    spatial = [t[:, :2] for t in trajs]
    rows = {}
    for measure in BITWISE_MEASURES + CLOSE_MEASURES:
        pa, pb = ((trajs, trajs[::-1]) if measure in _NEEDS_TIME
                  else (spatial, spatial[::-1]))
        kwargs = _MEASURE_KWARGS.get(measure, {})
        reference = _reference_values(measure, pa, pb)
        compiled = np.asarray(numba_kernels.BATCH_KERNELS[measure](pa, pb, **kwargs))
        if measure in BITWISE_MEASURES:
            exact = bool(np.array_equal(reference, compiled))
        else:
            exact = bool(np.allclose(reference, compiled, rtol=1e-12, atol=0))
        # Thresholded run: finite values must match the compiled full distance
        # bitwise (thresholds are an optimisation, not a perturbation); an
        # abandoned (+inf) value must correspond to a distance > τ.  The
        # backends may abandon different pairs (both soundly).
        taus = reference * 0.7
        abandoned = np.asarray(
            numba_kernels.BATCH_KERNELS[measure](pa, pb, thresholds=taus, **kwargs))
        finite = np.isfinite(abandoned)
        sound = bool(np.array_equal(abandoned[finite], compiled[finite])
                     and np.all(reference[~finite] > taus[~finite]))
        # Exact-tie: τ equal to the distance must never abandon.
        ties = np.asarray(
            numba_kernels.BATCH_KERNELS[measure](pa, pb, thresholds=reference,
                                                 **kwargs))
        tie_ok = bool(np.array_equal(ties, compiled) and np.isfinite(ties).all())
        rows[measure] = {"exact": exact, "threshold_sound": sound,
                         "tie_never_abandons": tie_ok,
                         "max_abs_difference": float(np.abs(reference - compiled).max())}
    return rows


def benchmark_matrix_build(trajectories, repeats: int) -> dict:
    numpy_engine = MatrixEngine(cache=None, backend="numpy")
    numba_engine = MatrixEngine(cache=None, backend="numba")
    reference = numpy_engine.pairwise(trajectories, "dtw")
    compiled = numba_engine.pairwise(trajectories, "dtw")
    numpy_s = matrix_build_latency(trajectories, "dtw", engine=numpy_engine,
                                   repeats=repeats)["latency_seconds"]
    numba_s = matrix_build_latency(trajectories, "dtw", engine=numba_engine,
                                   repeats=repeats)["latency_seconds"]
    return {
        "numpy_seconds": numpy_s,
        "numba_seconds": numba_s,
        "speedup": numpy_s / max(numba_s, 1e-12),
        "exact_match": bool(np.array_equal(reference, compiled)),
    }


def benchmark_abandoning_knn(trajectories, num_queries: int, k: int) -> dict:
    """τ-abandoning vs full refinement under the compiled backend."""
    engine = MatrixEngine(cache=None, backend="numba")
    index = TrajectoryIndex(trajectories)
    matrix = engine.cross(trajectories[:num_queries], trajectories, "dtw")
    expected = knn_from_matrix(matrix, k, exclude_self=True)

    def run(abandon: bool) -> tuple[float, bool]:
        start = time.perf_counter()
        exact = True
        for query in range(num_queries):
            result = knn_search(index, trajectories[query], k, measure="dtw",
                                engine=engine, exclude=query, abandon=abandon,
                                batch_size=2)
            exact &= bool(np.array_equal(result.indices, expected[query]))
            exact &= bool(np.array_equal(result.distances,
                                         matrix[query][result.indices]))
        return time.perf_counter() - start, exact

    full_seconds, full_exact = run(abandon=False)
    abandoning_seconds, abandoning_exact = run(abandon=True)
    return {
        "full_seconds": full_seconds,
        "abandoning_seconds": abandoning_seconds,
        "latency_ratio": full_seconds / max(abandoning_seconds, 1e-12),
        "exact_match": full_exact and abandoning_exact,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=200,
                        help="database size for the speed section (default 200)")
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--preset", default="chengdu")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on any exactness failure, or — "
                             "with numba installed and size>=200 — on a missed "
                             "speedup/latency floor")
    args = parser.parse_args()

    numba_present = backend_available("numba")
    provenance = backend_provenance()
    exactness = check_exactness()

    record = {
        "preset": args.preset,
        "size": args.size,
        "num_queries": args.queries,
        "k": args.k,
        "repeats": args.repeats,
        "platform": platform.platform(),
        **provenance,
        "numba_present": numba_present,
        "speedup_floor": SPEEDUP_FLOOR,
        "exactness": exactness,
    }

    failures = [f"{measure}: {key} failed"
                for measure, row in exactness.items()
                for key in ("exact", "threshold_sound", "tie_never_abandons")
                if not row[key]]

    if numba_present:
        dataset = generate_dataset(args.preset, size=args.size, seed=0)
        trajectories = dataset.point_arrays(spatial_only=True)
        record["matrix_build"] = build = benchmark_matrix_build(trajectories,
                                                                args.repeats)
        record["abandoning_knn"] = knn = benchmark_abandoning_knn(
            trajectories, args.queries, args.k)
        if not build["exact_match"]:
            failures.append("matrix build not bitwise identical across backends")
        if not knn["exact_match"]:
            failures.append("kNN not identical to knn_from_matrix")
        # Wall-clock floors only gate at the calibrated scale.
        if args.size >= 200:
            if build["speedup"] < SPEEDUP_FLOOR:
                failures.append(f"dtw matrix build speedup "
                                f"{build['speedup']:.2f}x below {SPEEDUP_FLOOR}x")
            if knn["latency_ratio"] <= 1.0:
                failures.append(f"abandoning kNN latency_ratio "
                                f"{knn['latency_ratio']:.2f} not > 1.0")
    else:
        record["matrix_build"] = None
        record["abandoning_knn"] = None

    # Embed the process-wide telemetry snapshot: counters (DP cell work,
    # abandons, search traffic) plus any span histograms REPRO_OBS captured,
    # so the perf trajectory is machine-readable across PRs.
    record["telemetry"] = obs_snapshot()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print(f"backend={record['kernel_backend']} "
          f"(numba {record['numba_version']}, "
          f"warmup {record['warmup_seconds']:.3f}s)")
    for measure, row in exactness.items():
        flag = "OK " if all(row[k] for k in
                            ("exact", "threshold_sound", "tie_never_abandons")) else "BAD"
        print(f"  {flag} {measure:10s} maxdiff {row['max_abs_difference']:.2e}")
    if numba_present:
        print(f"  dtw matrix build n={args.size}: "
              f"{record['matrix_build']['numpy_seconds']:.3f}s -> "
              f"{record['matrix_build']['numba_seconds']:.3f}s "
              f"({record['matrix_build']['speedup']:.1f}x)")
        print(f"  abandoning kNN: {record['abandoning_knn']['full_seconds']:.3f}s -> "
              f"{record['abandoning_knn']['abandoning_seconds']:.3f}s "
              f"(ratio {record['abandoning_knn']['latency_ratio']:.2f})")
    else:
        print("  numba absent: speed section skipped (exactness checked via "
              "the pure-python stub path)")
    print(f"saved {RESULTS_PATH}")

    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
