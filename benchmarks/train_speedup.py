"""Micro-benchmark: mask-aware batched training vs the per-sample reference.

Trains the RNN-based baselines (NeuTraj, ST2Vec) with and without the LH-plugin
twice from identical initial parameters — once through the per-sample parity
path (``batched=False``) and once through the padded, mask-aware batched path —
and records per-epoch wall-clock plus the per-epoch losses of both runs to
``benchmarks/results/train_speedup.json``.

Two properties are gated:

* **parity** — the two runs follow the same optimisation trajectory: per-epoch
  losses must agree within a tight tolerance (the batched path performs the
  same arithmetic, so observed differences are at the level of BLAS summation
  order);
* **speedup** — at the default scale (n=60) at least one RNN-based encoder must
  train ≥3× faster per epoch through the batched path.

Run with::

    PYTHONPATH=src python benchmarks/train_speedup.py [--size 60] [--epochs 2]

Parity is always gated under ``--strict``; the speedup floor only applies at
``--size`` ≥ 60 (tiny smoke runs — CI uses n=16 — have too little work per
batch for stable timing ratios).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import LHPlugin, LHPluginConfig
from repro.data import generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.models import get_model
from repro.training import SimilarityTrainer
from repro.obs import snapshot as obs_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "train_speedup.json"

#: Minimum acceptable batched-vs-per-sample epoch-time ratio for at least one
#: RNN-based encoder at the default scale.
SPEEDUP_FLOOR = 3.0

#: Per-epoch losses of the two paths must agree to this tolerance.
LOSS_RTOL = 1e-6
LOSS_ATOL = 1e-9

#: Dataset preset per benchmarked model (ST2Vec needs timestamped trajectories).
MODELS = {
    "neutraj": "chengdu",
    "st2vec": "tdrive",
}


def run_config(model: str, preset: str, size: int, epochs: int,
               with_plugin: bool, seed: int = 0) -> dict:
    dataset = generate_dataset(preset, size=size, seed=seed)
    trajectories = dataset.point_arrays(spatial_only=True)
    truth = normalize_matrix(pairwise_distance_matrix(trajectories, "dtw"),
                             method="mean")

    results = {}
    for batched in (False, True):
        encoder = get_model(model).build(dataset, embedding_dim=16, hidden_dim=24,
                                         seed=seed)
        plugin = None
        if with_plugin:
            plugin = LHPlugin(LHPluginConfig(factor_dim=8, fusion_hidden=16,
                                             seed=seed))
        trainer = SimilarityTrainer(encoder, plugin=plugin, seed=seed,
                                    batched=batched)
        start = time.perf_counter()
        history = trainer.fit(dataset, truth, epochs=epochs)
        elapsed = time.perf_counter() - start
        results[batched] = {
            "seconds_per_epoch": elapsed / epochs,
            "losses": list(history.losses),
        }

    loss_parity = bool(np.allclose(results[True]["losses"], results[False]["losses"],
                                   rtol=LOSS_RTOL, atol=LOSS_ATOL))
    return {
        "model": model,
        "preset": preset,
        "with_plugin": with_plugin,
        "per_sample_seconds_per_epoch": results[False]["seconds_per_epoch"],
        "batched_seconds_per_epoch": results[True]["seconds_per_epoch"],
        "speedup": results[False]["seconds_per_epoch"]
        / max(results[True]["seconds_per_epoch"], 1e-12),
        "per_sample_losses": results[False]["losses"],
        "batched_losses": results[True]["losses"],
        "loss_parity": loss_parity,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=60,
                        help="dataset size (default 60)")
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--models", nargs="+", default=sorted(MODELS),
                        choices=sorted(MODELS))
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when loss parity fails, or (at "
                             "size >= 60) when no RNN encoder reaches the "
                             "speedup floor; loss parity is deterministic, "
                             "wall-clock ratios only gate at full scale")
    args = parser.parse_args()

    rows = []
    for model in args.models:
        preset = MODELS[model]
        for with_plugin in (False, True):
            row = run_config(model, preset, args.size, args.epochs, with_plugin)
            rows.append(row)
            print(f"  {model:8s} plugin={str(with_plugin):5s} "
                  f"epoch {row['per_sample_seconds_per_epoch']:.2f}s -> "
                  f"{row['batched_seconds_per_epoch']:.2f}s "
                  f"({row['speedup']:.1f}x), parity={row['loss_parity']}")

    best = max(rows, key=lambda row: row["speedup"])
    record = {
        "size": args.size,
        "epochs": args.epochs,
        "platform": platform.platform(),
        "speedup_floor": SPEEDUP_FLOOR,
        "best_speedup": best["speedup"],
        "best_config": {"model": best["model"], "with_plugin": best["with_plugin"]},
        "configs": rows,
    }
    # Embed the process-wide telemetry snapshot: counters (DP cell work,
    # abandons, search traffic) plus any span histograms REPRO_OBS captured,
    # so the perf trajectory is machine-readable across PRs.
    record["telemetry"] = obs_snapshot()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"best speedup {best['speedup']:.1f}x "
          f"({best['model']}, plugin={best['with_plugin']})")
    print(f"saved {RESULTS_PATH}")

    failures = [f"{row['model']} (plugin={row['with_plugin']}) batched losses "
                f"diverge from the per-sample reference"
                for row in rows if not row["loss_parity"]]
    # The floor is calibrated for the default scale; smoke runs gate parity only.
    if args.size >= 60 and best["speedup"] < SPEEDUP_FLOOR:
        failures.append(f"best speedup {best['speedup']:.1f}x below the "
                        f"{SPEEDUP_FLOOR}x floor")
    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
