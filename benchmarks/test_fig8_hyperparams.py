"""Benchmark for Figure 8: hyper-parameter sweep over the curvature β and exponent c.

Expected shape: accuracy varies mildly over the sweep and the paper's defaults
(β = 1, c = 4) are competitive with the best setting.
"""

from repro.experiments import ExperimentSettings, fig8_hyperparams as experiment

from conftest import run_once


def test_fig8_hyperparams(benchmark, save_result):
    settings = ExperimentSettings(model="meanpool", dataset_size=30, epochs=4, seed=0)
    result = run_once(
        benchmark,
        lambda: experiment.run(settings, betas=(0.5, 1.0, 2.0), compressions=(2.0, 4.0, 8.0)),
    )
    table = experiment.format_result(result)
    save_result("fig8_hyperparams", table)

    beta_scores = {row["beta"]: row["metrics"]["hr@10"] for row in result["beta_sweep"]}
    compression_scores = {row["c"]: row["metrics"]["hr@10"]
                          for row in result["compression_sweep"]}
    assert beta_scores[1.0] >= max(beta_scores.values()) - 0.15
    assert compression_scores[4.0] >= max(compression_scores.values()) - 0.15
