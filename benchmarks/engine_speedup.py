"""Micro-benchmark: engine speedup (serial reference vs vectorized strategies).

Measures the two hot paths the compute engine replaces — pairwise distance-matrix
construction and exhaustive triplet violation statistics — and records the speedups
to ``benchmarks/results/engine_speedup.json`` so the performance trajectory of the
repo is tracked across PRs.

Run with::

    PYTHONPATH=src python benchmarks/engine_speedup.py [--size 60] [--repeats 3]

The acceptance floor for the engine PR was ≥5× on ``pairwise_distance_matrix``
(DTW, n=60) and ≥10× on ``violation_report`` (n=60, exhaustive triplets); the
script prints both ratios and flags any regression below those floors.
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

import numpy as np

from repro.data import generate_dataset
from repro.engine import MatrixEngine, backend_provenance
from repro.eval import matrix_build_latency, time_callable
from repro.violation import violation_report
from repro.obs import snapshot as obs_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "engine_speedup.json"

#: (label, floor) — minimum acceptable speedups for the tracked probes.
FLOORS = {"pairwise_dtw": 5.0, "violation_report": 10.0}


def benchmark_pairwise(trajectories, measures, repeats: int) -> dict:
    serial = MatrixEngine(strategy="serial", use_kernels=False)
    vectorized = MatrixEngine(strategy="chunked")
    rows = {}
    for measure in measures:
        kwargs = {"epsilon": 0.25} if measure in ("edr", "lcss") else {}
        reference = serial.pairwise(trajectories, measure, **kwargs)
        candidate = vectorized.pairwise(trajectories, measure, **kwargs)
        max_diff = float(np.abs(reference - candidate).max())
        serial_s = matrix_build_latency(trajectories, measure, engine=serial,
                                        repeats=repeats, **kwargs)["latency_seconds"]
        vector_s = matrix_build_latency(trajectories, measure, engine=vectorized,
                                        repeats=repeats, **kwargs)["latency_seconds"]
        rows[measure] = {
            "serial_seconds": serial_s,
            "vectorized_seconds": vector_s,
            "speedup": serial_s / vector_s,
            "max_abs_difference": max_diff,
        }
    return rows


def benchmark_violation(matrix, repeats: int) -> dict:
    scalar_s = time_callable(lambda: violation_report(matrix, vectorized=False),
                             repeats=repeats)
    vector_s = time_callable(lambda: violation_report(matrix), repeats=repeats)
    scalar = violation_report(matrix, vectorized=False)
    vectorized = violation_report(matrix)
    return {
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vector_s,
        "speedup": scalar_s / vector_s,
        "rv_difference": abs(scalar["ratio_of_violation"]
                             - vectorized["ratio_of_violation"]),
        "arvs_difference": abs(scalar["average_relative_violation"]
                               - vectorized["average_relative_violation"]),
        "triplets": scalar["triplets"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=60,
                        help="number of trajectories (default 60)")
    parser.add_argument("--preset", default="chengdu")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--measures", nargs="+", default=["dtw", "erp", "edr", "lcss"])
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a speedup floor is missed "
                             "(off by default: shared CI runners make wall-clock "
                             "ratios too noisy to gate on)")
    args = parser.parse_args()

    dataset = generate_dataset(args.preset, size=args.size, seed=0)
    trajectories = dataset.point_arrays(spatial_only=True)
    # Warm the active backend before any timed run (JIT compilation cost is
    # recorded separately in the provenance, never inside a measurement).
    provenance = backend_provenance()
    matrix = MatrixEngine().pairwise(trajectories, "dtw")

    pairwise = benchmark_pairwise(trajectories, args.measures, args.repeats)
    violation = benchmark_violation(matrix, args.repeats)

    record = {
        "preset": args.preset,
        "size": args.size,
        "repeats": args.repeats,
        "platform": platform.platform(),
        **provenance,
        "pairwise": pairwise,
        "violation_report": violation,
    }
    # Embed the process-wide telemetry snapshot: counters (DP cell work,
    # abandons, search traffic) plus any span histograms REPRO_OBS captured,
    # so the perf trajectory is machine-readable across PRs.
    record["telemetry"] = obs_snapshot()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print(f"n={args.size} trajectories ({args.preset}), median of {args.repeats}")
    for measure, row in pairwise.items():
        print(f"  pairwise {measure:8s} {row['serial_seconds']:.4f}s -> "
              f"{row['vectorized_seconds']:.4f}s  ({row['speedup']:.1f}x, "
              f"maxdiff {row['max_abs_difference']:.2e})")
    print(f"  violation_report  {violation['scalar_seconds']:.4f}s -> "
          f"{violation['vectorized_seconds']:.4f}s  ({violation['speedup']:.1f}x, "
          f"{violation['triplets']} triplets)")
    print(f"saved {RESULTS_PATH}")

    failures = []
    if pairwise.get("dtw", {}).get("speedup", float("inf")) < FLOORS["pairwise_dtw"]:
        failures.append(f"pairwise dtw speedup below {FLOORS['pairwise_dtw']}x")
    if violation["speedup"] < FLOORS["violation_report"]:
        failures.append(f"violation_report speedup below {FLOORS['violation_report']}x")
    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
