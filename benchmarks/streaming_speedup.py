"""Micro-benchmark: incremental frontier extension vs full recompute.

The streaming PR's claim: on a live fleet with small per-tick deltas, keeping
per-pair DP frontiers (:class:`repro.engine.StreamingEngine`) and extending
them by exactly the new columns beats recomputing every changed (pattern,
window) distance from scratch — while staying **bitwise identical**.

The benchmark replays one generated city workload
(:func:`repro.data.generate_stream_workload`) through two paths, interleaved
tick by tick so machine drift cancels:

* **incremental** — non-lazy ``engine.append`` per updated stream: each tick
  costs one ``n × Δ`` frontier extension per changed pair;
* **recompute** — the *vectorized batch kernel* over the same changed
  windows, one batched from-scratch sweep per tick (``n × m`` cells per
  pair).  This is the strongest honest baseline: a stateless from-scratch
  pass through the same per-pair reference kernels would be another order of
  magnitude slower.

Three gates (``--strict`` exits non-zero on failure):

* every per-tick incremental value equals the recompute value bit-for-bit —
  enforced at **every** scale;
* ``stream.dp_cells`` (what the extensions charged) comes in strictly below
  ``engine.dp_cells`` (what the recomputes charged) — every scale;
* incremental throughput ≥ ``SPEEDUP_FLOOR``× recompute — wall-clock, so
  gated only at the default scale or above (200 streams, windows ≥ 256
  points), where the asymptotic gap dominates constant factors.

Results land in ``benchmarks/results/streaming_speedup.json``.  Run with::

    PYTHONPATH=src python benchmarks/streaming_speedup.py [--streams 200] [--strict]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.data import generate_dataset, generate_stream_workload
from repro.engine import StreamingEngine, get_batch_kernel
from repro.obs import snapshot as obs_snapshot
from repro.obs import export_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "streaming_speedup.json"

#: Acceptance floor (gated with --strict at default scale).
SPEEDUP_FLOOR = 5.0
#: Scale at which the wall-clock floor applies.
FLOOR_STREAMS = 200
FLOOR_INITIAL_POINTS = 256

MEASURE_KWARGS = {"edr": {"epsilon": 0.25}, "lcss": {"epsilon": 0.25}}


def _counters():
    return obs_snapshot()["counters"]


def run_workload(args) -> dict:
    workload = generate_stream_workload(
        args.preset, streams=args.streams, ticks=args.ticks, seed=args.seed,
        initial_points=args.initial_points, update_fraction=args.update_fraction,
        mean_appends=args.mean_appends, evict_fraction=args.evict_fraction)
    pattern = generate_dataset(args.preset, size=1, seed=args.seed + 1) \
        .point_arrays(spatial_only=True)[0][:args.pattern_points]
    kwargs = MEASURE_KWARGS.get(args.measure, {})
    batch = get_batch_kernel(args.measure)

    # Incremental path: one stream + one watched pair per trajectory, frontiers
    # warmed outside the clock — a live deployment's steady state.
    engine = StreamingEngine(checkpoint_every=args.checkpoint_every)
    pair_ids = []
    for stream_id, window in enumerate(workload.initial):
        engine.register_stream(stream_id, points=window)
        pair_ids.append(engine.watch(pattern, stream_id, args.measure, **kwargs))
    for pair_id in pair_ids:
        engine.value(pair_id)

    # Recompute path: plain windows, re-swept from scratch on every change.
    windows = [window.copy() for window in workload.initial]

    before = _counters()
    stream_cells_0 = before.get("stream.dp_cells", 0)
    engine_cells_0 = before.get("engine.dp_cells", 0)

    incremental_seconds = recompute_seconds = 0.0
    ticks_run = mismatches = updated_pairs = 0
    for tick in workload.ticks:
        if not tick.appends and not tick.evicts:
            continue
        ticks_run += 1
        changed = sorted(set(tick.appends) | set(tick.evicts))

        start = time.perf_counter()
        incremental_values = {}
        for stream_id, points in tick.appends.items():
            incremental_values.update(engine.append(stream_id, points))
        for stream_id, count in tick.evicts.items():
            engine.evict(stream_id, count)
        for stream_id in tick.evicts:
            incremental_values[pair_ids[stream_id]] = engine.value(
                pair_ids[stream_id])
        incremental_seconds += time.perf_counter() - start

        for stream_id, points in tick.appends.items():
            windows[stream_id] = np.concatenate([windows[stream_id], points])
        for stream_id, count in tick.evicts.items():
            windows[stream_id] = windows[stream_id][count:]
        start = time.perf_counter()
        recomputed = np.asarray(batch([pattern] * len(changed),
                                      [windows[s] for s in changed], **kwargs))
        recompute_seconds += time.perf_counter() - start

        updated_pairs += len(changed)
        for position, stream_id in enumerate(changed):
            if incremental_values[pair_ids[stream_id]] != recomputed[position]:
                mismatches += 1

    after = _counters()
    stream_cells = after.get("stream.dp_cells", 0) - stream_cells_0
    engine_cells = after.get("engine.dp_cells", 0) - engine_cells_0
    points = workload.total_appended_points()
    stats = engine.stats()
    return {
        "measure": args.measure,
        "streams": args.streams,
        "ticks": ticks_run,
        "updated_pairs": updated_pairs,
        "appended_points": points,
        "final_window_mean": float(np.mean(workload.final_lengths)),
        "exact_match": mismatches == 0,
        "mismatches": mismatches,
        "incremental_seconds": incremental_seconds,
        "recompute_seconds": recompute_seconds,
        "incremental_points_per_second": points / max(incremental_seconds, 1e-12),
        "recompute_points_per_second": points / max(recompute_seconds, 1e-12),
        "speedup": recompute_seconds / max(incremental_seconds, 1e-12),
        "stream_dp_cells": stream_cells,
        "recompute_dp_cells": engine_cells,
        "cells_ratio": engine_cells / max(stream_cells, 1),
        "replays": stats["replays"],
        "checkpoint_promotions": stats["checkpoint_promotions"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=200,
                        help="fleet size (default 200)")
    parser.add_argument("--ticks", type=int, default=40)
    parser.add_argument("--initial-points", type=int, default=384,
                        help="starting window length; the recompute baseline "
                             "scales with it, the incremental path does not")
    parser.add_argument("--pattern-points", type=int, default=32)
    parser.add_argument("--update-fraction", type=float, default=0.15,
                        help="per-tick fraction of streams that report")
    parser.add_argument("--mean-appends", type=float, default=2.0,
                        help="mean points per report (small per-tick deltas)")
    parser.add_argument("--evict-fraction", type=float, default=0.0,
                        help="fraction of reports that also slide the window "
                             "head (exercises checkpointed replays)")
    parser.add_argument("--checkpoint-every", type=int, default=None)
    parser.add_argument("--measure", default="dtw",
                        choices=["dtw", "erp", "edr", "lcss", "frechet"])
    parser.add_argument("--preset", default="chengdu")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on an exactness or cell-count "
                             "failure at any scale, or a missed speedup floor "
                             "at the default scale or above")
    args = parser.parse_args()

    result = run_workload(args)

    record = {
        "preset": args.preset,
        "initial_points": args.initial_points,
        "pattern_points": args.pattern_points,
        "update_fraction": args.update_fraction,
        "mean_appends": args.mean_appends,
        "evict_fraction": args.evict_fraction,
        "platform": platform.platform(),
        "streaming": result,
        "telemetry": export_snapshot(benchmark="streaming_speedup"),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print(f"{args.streams} streams ({args.preset}), {result['ticks']} ticks, "
          f"{result['updated_pairs']} pair updates, "
          f"{result['appended_points']} points appended, "
          f"mean window {result['final_window_mean']:.0f}, "
          f"measure={args.measure}")
    print(f"  incremental : {result['incremental_seconds'] * 1e3:.1f} ms "
          f"({result['incremental_points_per_second']:.0f} points/s)")
    print(f"  recompute   : {result['recompute_seconds'] * 1e3:.1f} ms "
          f"({result['recompute_points_per_second']:.0f} points/s)")
    print(f"  speedup {result['speedup']:.1f}x, dp-cells "
          f"{result['stream_dp_cells']} vs {result['recompute_dp_cells']} "
          f"({result['cells_ratio']:.1f}x fewer), "
          f"exact={result['exact_match']}, replays={result['replays']}, "
          f"promotions={result['checkpoint_promotions']}")
    print(f"saved {RESULTS_PATH}")

    failures = []
    if not result["exact_match"]:
        failures.append(f"{result['mismatches']} incremental values differ "
                        f"from the batch recompute")
    if result["stream_dp_cells"] >= result["recompute_dp_cells"]:
        failures.append(f"streaming dp-cells not below recompute "
                        f"({result['stream_dp_cells']} vs "
                        f"{result['recompute_dp_cells']})")
    if (args.streams >= FLOOR_STREAMS
            and args.initial_points >= FLOOR_INITIAL_POINTS
            and result["speedup"] < SPEEDUP_FLOOR):
        failures.append(f"incremental speedup below {SPEEDUP_FLOOR}x "
                        f"({result['speedup']:.1f}x)")
    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
