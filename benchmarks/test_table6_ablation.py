"""Benchmark for Table VI: incremental ablation of the LH-plugin components.

Expected shape: moving along original → lh-vanilla → lh-cosh → fusion-dist does not
degrade accuracy on average, and the full fusion distance is the best (or tied best)
variant on most measures.
"""

from repro.experiments import ExperimentSettings, table6_ablation as experiment

from conftest import run_once


def test_table6_ablation(benchmark, save_result):
    settings = ExperimentSettings(model="meanpool", dataset_size=35, epochs=5, seed=0)
    result = run_once(benchmark,
                      lambda: experiment.run(settings, measures=("dtw", "sspd", "edr")))
    table = experiment.format_result(result)
    save_result("table6_ablation", table)

    gaps = []
    for measure in result["measures"]:
        cell = result["results"][measure]
        gaps.append(cell["fusion-dist"]["hr@10"] - cell["original"]["hr@10"])
    assert sum(gaps) / len(gaps) > -0.05
