"""Micro-benchmark: filter-and-refine search vs brute-force top-k.

Measures, per measure, how many full distance computations the lower-bound
pruning avoids relative to the brute-force scan (which refines every candidate
for every query), verifies that the pruned search returns *exactly* the
``knn_from_matrix`` neighbours, and records everything to
``benchmarks/results/search_speedup.json`` so the serving-path trajectory of the
repo is tracked across PRs.

Run with::

    PYTHONPATH=src python benchmarks/search_speedup.py [--size 200] [--queries 10]

The acceptance floor for the search PR is ≥3× fewer refined distance
computations than brute force on DTW at n=200; the script prints every ratio and
flags any measure below its floor.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.data import generate_dataset
from repro.distances import cross_distance_matrix, knn_from_matrix
from repro.engine import MatrixEngine
from repro.search import SearchService, TrajectoryIndex
from repro.obs import snapshot as obs_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "search_speedup.json"

#: Minimum acceptable refined-computation reduction (brute force / refined).
FLOORS = {"dtw": 3.0}


def benchmark_measure(index: TrajectoryIndex, trajectories, measure: str,
                      num_queries: int, k: int, engine: MatrixEngine) -> dict:
    kwargs = {"epsilon": 0.25} if measure in ("edr", "lcss") else {}
    queries = trajectories[:num_queries]

    start = time.perf_counter()
    matrix = engine.cross(queries, trajectories, measure, **kwargs)
    brute_knn = knn_from_matrix(matrix, k, exclude_self=True)
    brute_seconds = time.perf_counter() - start

    service = SearchService(index, measure=measure, k=k, engine=engine, **kwargs)
    start = time.perf_counter()
    results = service.search_many(queries, exclude_self=True)
    search_seconds = time.perf_counter() - start

    exact = all(np.array_equal(result.indices, brute_row)
                for result, brute_row in zip(results, brute_knn))
    stats = service.stats()
    brute_refined = num_queries * (len(trajectories) - 1)
    return {
        "exact_match": exact,
        "brute_refined": brute_refined,
        "search_refined": stats["num_refined"],
        "refined_reduction": brute_refined / max(stats["num_refined"], 1),
        "pruned_fraction": stats["pruned_fraction"],
        "brute_seconds": brute_seconds,
        "search_seconds": search_seconds,
        "latency_speedup": brute_seconds / max(search_seconds, 1e-12),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=200,
                        help="database size (default 200)")
    parser.add_argument("--queries", type=int, default=10,
                        help="queries drawn from the database (default 10)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--preset", default="chengdu")
    parser.add_argument("--measures", nargs="+",
                        default=["dtw", "hausdorff", "frechet", "sspd", "erp",
                                 "edr", "lcss"])
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a reduction floor is missed or "
                             "exactness fails (refined-computation counts are "
                             "deterministic, so floors are safe to gate on; "
                             "wall-clock ratios are informational)")
    args = parser.parse_args()

    dataset = generate_dataset(args.preset, size=args.size, seed=0)
    trajectories = dataset.point_arrays(spatial_only=True)
    engine = MatrixEngine(cache=None)
    index = TrajectoryIndex(trajectories)

    rows = {measure: benchmark_measure(index, trajectories, measure, args.queries,
                                       args.k, engine)
            for measure in args.measures}

    record = {
        "preset": args.preset,
        "size": args.size,
        "num_queries": args.queries,
        "k": args.k,
        "platform": platform.platform(),
        "measures": rows,
    }
    # Embed the process-wide telemetry snapshot: counters (DP cell work,
    # abandons, search traffic) plus any span histograms REPRO_OBS captured,
    # so the perf trajectory is machine-readable across PRs.
    record["telemetry"] = obs_snapshot()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print(f"n={args.size} ({args.preset}), {args.queries} queries, k={args.k}")
    for measure, row in rows.items():
        print(f"  {measure:10s} refined {row['search_refined']:5d} vs "
              f"{row['brute_refined']} brute ({row['refined_reduction']:.1f}x fewer, "
              f"{row['pruned_fraction'] * 100:.0f}% pruned), "
              f"latency {row['brute_seconds']:.3f}s -> {row['search_seconds']:.3f}s, "
              f"exact={row['exact_match']}")
    print(f"saved {RESULTS_PATH}")

    failures = [f"{measure} not identical to knn_from_matrix"
                for measure, row in rows.items() if not row["exact_match"]]
    # The reduction floors are calibrated for the default scale: pruning power
    # grows with the database-to-k ratio, so tiny smoke runs only gate exactness.
    if args.size >= 200:
        for measure, floor in FLOORS.items():
            if measure in rows and rows[measure]["refined_reduction"] < floor:
                failures.append(f"{measure} refined reduction below {floor}x")
    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
