"""Micro-benchmark: τ-aware in-kernel early abandoning vs full refinement.

``knn_search`` already prunes candidates whose *static* lower bound exceeds the
heap's τ, but every refined candidate used to pay for its entire DP table.
This benchmark measures what the in-kernel cascade (bound → τ-sorted batch →
in-kernel abandon) saves on top: it runs the same kNN workload with and
without ``abandon=`` and compares the **DP cell-work** the kernels actually
performed (via the engine's ``dp_cell_count`` counter — deterministic, so safe
to gate on) plus wall-clock (informational).  Both runs are verified
bit-identical to ``knn_from_matrix`` on the full cross matrix, ties included.

Run with::

    PYTHONPATH=src python benchmarks/prune_speedup.py [--size 200] [--queries 20]

Results land in ``benchmarks/results/prune_speedup.json``.  The acceptance
floor for this PR is ≥2× fewer DP cells computed on DTW kNN at n=200; smaller
smoke runs (CI) gate on exactness only, like the other speedup benchmarks.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.data import generate_dataset
from repro.distances import knn_from_matrix
from repro.engine import (MatrixEngine, backend_provenance, dp_cell_count,
                          reset_dp_cell_count)
from repro.search import TrajectoryIndex, knn_search
from repro.obs import snapshot as obs_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "prune_speedup.json"

#: Minimum acceptable DP cell-work reduction (full refinement / abandoning).
FLOORS = {"dtw": 2.0}


def benchmark_measure(index: TrajectoryIndex, trajectories, measure: str,
                      num_queries: int, k: int, batch_size: int,
                      engine: MatrixEngine) -> dict:
    matrix = engine.cross(trajectories[:num_queries], trajectories, measure)
    expected = knn_from_matrix(matrix, k, exclude_self=True)

    def run(abandon: bool) -> tuple[int, float, int, bool]:
        reset_dp_cell_count()
        start = time.perf_counter()
        exact = True
        abandoned = 0
        for query in range(num_queries):
            result = knn_search(index, trajectories[query], k, measure=measure,
                                engine=engine, exclude=query, abandon=abandon,
                                batch_size=batch_size)
            exact &= bool(np.array_equal(result.indices, expected[query]))
            exact &= bool(np.allclose(result.distances,
                                      matrix[query][result.indices],
                                      rtol=0, atol=0))
            abandoned += result.stats.num_abandoned
        return dp_cell_count(), time.perf_counter() - start, abandoned, exact

    full_cells, full_seconds, _, full_exact = run(abandon=False)
    abandoning_cells, abandoning_seconds, abandoned, abandoning_exact = run(abandon=True)
    return {
        "exact_match": full_exact and abandoning_exact,
        "full_cells": full_cells,
        "abandoning_cells": abandoning_cells,
        "cell_reduction": full_cells / max(abandoning_cells, 1),
        "num_abandoned": abandoned,
        "full_seconds": full_seconds,
        "abandoning_seconds": abandoning_seconds,
        "latency_ratio": full_seconds / max(abandoning_seconds, 1e-12),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=200,
                        help="database size (default 200)")
    parser.add_argument("--queries", type=int, default=20,
                        help="queries drawn from the database (default 20)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--batch-size", type=int, default=2,
                        help="refinement batch size (small batches refresh τ "
                             "often, which is where abandoning bites)")
    parser.add_argument("--preset", default="chengdu")
    parser.add_argument("--measures", nargs="+", default=["dtw", "erp"])
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when exactness fails or (at "
                             "n>=200) a cell-reduction floor is missed; cell "
                             "counts are deterministic, wall-clock is "
                             "informational")
    args = parser.parse_args()

    dataset = generate_dataset(args.preset, size=args.size, seed=0)
    trajectories = dataset.point_arrays(spatial_only=True)
    engine = MatrixEngine(cache=None)
    # Resolve + warm the active backend before anything is timed: JIT
    # compilation must never ride inside a measured kNN pass.
    provenance = backend_provenance()
    index = TrajectoryIndex(trajectories)

    rows = {measure: benchmark_measure(index, trajectories, measure,
                                       args.queries, args.k, args.batch_size,
                                       engine)
            for measure in args.measures}

    record = {
        "preset": args.preset,
        "size": args.size,
        "num_queries": args.queries,
        "k": args.k,
        "batch_size": args.batch_size,
        "platform": platform.platform(),
        # Active backend + numba version (or "absent") + warm-up seconds, so
        # latency trajectories across boxes/backends stay comparable.
        **provenance,
        "measures": rows,
    }
    # Embed the process-wide telemetry snapshot: counters (DP cell work,
    # abandons, search traffic) plus any span histograms REPRO_OBS captured,
    # so the perf trajectory is machine-readable across PRs.
    record["telemetry"] = obs_snapshot()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print(f"n={args.size} ({args.preset}), {args.queries} queries, "
          f"k={args.k}, refine batch {args.batch_size}")
    for measure, row in rows.items():
        print(f"  {measure:8s} cells {row['full_cells']:8d} -> "
              f"{row['abandoning_cells']:8d} ({row['cell_reduction']:.2f}x fewer, "
              f"{row['num_abandoned']} abandoned), "
              f"wall {row['full_seconds']:.3f}s -> {row['abandoning_seconds']:.3f}s, "
              f"exact={row['exact_match']}")
    print(f"saved {RESULTS_PATH}")

    failures = [f"{measure} not identical to knn_from_matrix"
                for measure, row in rows.items() if not row["exact_match"]]
    # Cell-reduction floors are calibrated for the default scale: abandoning
    # power grows with the candidate pool, so tiny smoke runs gate exactness only.
    if args.size >= 200:
        for measure, floor in FLOORS.items():
            if measure in rows and rows[measure]["cell_reduction"] < floor:
                failures.append(f"{measure} cell reduction below {floor}x")
    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
