"""Benchmark for Table I: triangle-constraint variability across datasets.

Expected shape: DTW/SSPD show double-digit RV percentages on the taxi-like presets,
the OSM preset violates least, and the metric controls (not shown in the paper's
table but asserted in the tests) never violate.
"""

from repro.experiments import table1_constraint_variability as experiment

from conftest import run_once


def test_table1_constraint_variability(benchmark, save_result):
    result = run_once(benchmark, lambda: experiment.run(dataset_size=32, max_triplets=2500))
    table = experiment.format_result(result)
    save_result("table1_constraint_variability", table)

    chengdu_dtw = result["results"]["chengdu"]["dtw"]
    assert chengdu_dtw["ratio_of_violation"] > 0.05
    assert result["results"]["osm"]["dtw"]["ratio_of_violation"] <= \
        result["results"]["tdrive"]["dtw"]["ratio_of_violation"]
