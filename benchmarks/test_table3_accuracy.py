"""Benchmark for Table III: spatial models × measures, original vs LH-plugin.

Expected shape: the LH-plugin variant matches or improves the original Euclidean
pipeline on most (model, measure) cells, with DTW showing the clearest gains.
"""

from repro.experiments import ExperimentSettings, table3_accuracy as experiment

from conftest import run_once


def test_table3_accuracy(benchmark, save_result):
    settings = ExperimentSettings(dataset_size=30, epochs=3, hidden_dim=20, seed=0)
    result = run_once(
        benchmark,
        lambda: experiment.run(settings,
                               models=("neutraj", "trajgat", "traj2simvec"),
                               measures=("dtw", "sspd", "edr"),
                               presets=("chengdu",)),
    )
    table = experiment.format_result(result)
    save_result("table3_accuracy", table)

    cells = result["results"]["chengdu"]
    improvements = []
    for model in result["models"]:
        for measure in result["measures"]:
            original = cells[model][measure]["original"]["hr@10"]
            plugged = cells[model][measure]["lh-plugin"]["hr@10"]
            improvements.append(plugged - original)
    # The plugin should help on average across the grid.
    assert sum(improvements) / len(improvements) > -0.05
