"""Micro-benchmark: zero-copy ``shared`` strategy vs per-call ``process`` pools.

The ``process`` strategy pays two taxes on every ``pairwise`` call: a fresh
``ProcessPoolExecutor`` and a pickled copy of each chunk's point arrays — for
a pairwise matrix every trajectory ships once per pair it appears in, an O(n)
amplification of the real data volume.  The ``shared`` strategy removes both:
a persistent worker pool plus a packed shared-memory trajectory arena
published once per call, so chunks carry only integer pair indices.

This benchmark runs the same pairwise workload under both strategies and
records three things to ``benchmarks/results/parallel_speedup.json``:

* **latency speedup** — median ``process`` seconds / median ``shared``
  seconds.  The shared pool is warmed once before timing (amortized startup
  *is* the feature).  The ≥1.5× acceptance floor applies at the full scale
  (``--size`` ≥ 200) on machines with ≥ 2 usable cores — wall-clock parallel
  dispatch cannot beat per-call pools on a single-core runner, where both
  strategies serialize onto the same CPU and only the (recorded) overhead
  gap separates them;
* **bytes shipped** — per-call pickled payload under ``process`` versus index
  metadata + one arena under ``shared``, deterministic, with a ≥8× reduction
  floor whenever the shared path actually dispatched;
* **exactness** — both strategies' matrices are asserted *bitwise identical*
  to the ``serial`` strategy, always.

Run with::

    PYTHONPATH=src python benchmarks/parallel_speedup.py [--size 200] [--workers 4]

``--strict`` exits non-zero on an exactness failure or a missed floor whose
gate applies (mirroring the other speedup benchmarks, whose floors only gate
at their calibrated scales).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path

import numpy as np

from repro.data import generate_dataset
from repro.engine import MatrixEngine, backend_provenance, shared_memory_available
from repro.eval import time_callable
from repro.obs import snapshot as obs_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "parallel_speedup.json"

#: Minimum acceptable process/shared wall-clock ratio (multi-core, full scale).
SPEEDUP_FLOOR = 1.5
#: Minimum acceptable process/shared bytes-shipped ratio (deterministic).
BYTES_FLOOR = 8.0
#: Floors are calibrated for this workload scale (matching the other benches).
FLOOR_SIZE = 200


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def benchmark_measure(trajectories, measure: str, workers: int,
                      repeats: int, kwargs: dict) -> dict:
    serial = MatrixEngine(strategy="serial", cache=None)
    chunked = MatrixEngine(strategy="chunked", cache=None)
    process = MatrixEngine(strategy="process", cache=None, max_workers=workers)
    shared = MatrixEngine(strategy="shared", cache=None, max_workers=workers)

    reference = serial.pairwise(trajectories, measure, **kwargs)
    chunked_matrix = chunked.pairwise(trajectories, measure, **kwargs)
    process_matrix = process.pairwise(trajectories, measure, **kwargs)
    shared_matrix = shared.pairwise(trajectories, measure, **kwargs)  # warms the pool

    chunked_s = time_callable(
        lambda: chunked.pairwise(trajectories, measure, **kwargs), repeats=repeats)
    process_s = time_callable(
        lambda: process.pairwise(trajectories, measure, **kwargs), repeats=repeats)
    shared_s = time_callable(
        lambda: shared.pairwise(trajectories, measure, **kwargs), repeats=repeats)

    # A workload small enough to fit one chunk never leaves the process under
    # either strategy (``last_dispatch`` stays None): latency is still
    # comparable, but there are no shipped bytes to account for.
    process_dispatch = process.last_dispatch or {"payload_bytes": 0}
    shared_dispatch = shared.last_dispatch or {"payload_bytes": 0,
                                               "arena_bytes": 0, "num_chunks": 1}
    process_bytes = process_dispatch["payload_bytes"]
    shared_bytes = (shared_dispatch["payload_bytes"]
                    + shared_dispatch["arena_bytes"])
    return {
        "exact_match": bool(np.array_equal(shared_matrix, reference)
                            and np.array_equal(process_matrix, reference)
                            and np.array_equal(chunked_matrix, reference)),
        "chunked_seconds": chunked_s,
        "process_seconds": process_s,
        "shared_seconds": shared_s,
        "speedup": process_s / max(shared_s, 1e-12),
        "process_payload_bytes": process_bytes,
        "shared_payload_bytes": shared_dispatch["payload_bytes"],
        "shared_arena_bytes": shared_dispatch["arena_bytes"],
        "bytes_reduction": process_bytes / max(shared_bytes, 1),
        "num_chunks": shared_dispatch["num_chunks"],
        "shared_memory_used": shared_dispatch["arena_bytes"] > 0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=200,
                        help="number of trajectories (default 200)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for both parallel strategies (default 4)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--preset", default="chengdu")
    parser.add_argument("--measures", nargs="+", default=["dtw", "erp"])
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when exactness fails, the bytes-"
                             "shipped floor is missed, or (at n>=%d with >=2 "
                             "usable cores) the wall-clock speedup floor is "
                             "missed" % FLOOR_SIZE)
    args = parser.parse_args()

    dataset = generate_dataset(args.preset, size=args.size, seed=0)
    trajectories = dataset.point_arrays(spatial_only=True)
    kwargs_by_measure = {"edr": {"epsilon": 0.25}, "lcss": {"epsilon": 0.25}}

    cores = usable_cores()
    # Warm the active backend before any timed run; provenance keys make the
    # recorded latencies comparable across boxes and backends.
    provenance = backend_provenance()
    rows = {measure: benchmark_measure(trajectories, measure, args.workers,
                                       args.repeats,
                                       kwargs_by_measure.get(measure, {}))
            for measure in args.measures}

    gate_speedup = args.size >= FLOOR_SIZE and cores >= 2
    record = {
        "preset": args.preset,
        "size": args.size,
        "workers": args.workers,
        "repeats": args.repeats,
        "usable_cores": cores,
        "shared_memory_available": shared_memory_available(),
        "platform": platform.platform(),
        **provenance,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_gated": gate_speedup,
        "bytes_floor": BYTES_FLOOR,
        "measures": rows,
    }
    # Embed the process-wide telemetry snapshot: counters (DP cell work,
    # abandons, search traffic) plus any span histograms REPRO_OBS captured,
    # so the perf trajectory is machine-readable across PRs.
    record["telemetry"] = obs_snapshot()
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print(f"n={args.size} ({args.preset}), {args.workers} workers, "
          f"{cores} usable core(s), median of {args.repeats}")
    for measure, row in rows.items():
        print(f"  {measure:8s} process {row['process_seconds']:.3f}s -> "
              f"shared {row['shared_seconds']:.3f}s ({row['speedup']:.2f}x; "
              f"chunked {row['chunked_seconds']:.3f}s), shipped "
              f"{row['process_payload_bytes']:,} -> "
              f"{row['shared_payload_bytes'] + row['shared_arena_bytes']:,} bytes "
              f"({row['bytes_reduction']:.0f}x less), exact={row['exact_match']}")
    print(f"saved {RESULTS_PATH}")

    failures = []
    for measure, row in rows.items():
        if not row["exact_match"]:
            failures.append(f"{measure} not bitwise identical to serial")
        if row["shared_memory_used"] and row["bytes_reduction"] < BYTES_FLOOR:
            failures.append(f"{measure} bytes-shipped reduction below {BYTES_FLOOR}x")
        if gate_speedup and row["speedup"] < SPEEDUP_FLOOR:
            failures.append(f"{measure} shared speedup over process below "
                            f"{SPEEDUP_FLOOR}x")
    if not gate_speedup:
        reason = (f"size {args.size} < {FLOOR_SIZE}" if args.size < FLOOR_SIZE
                  else f"only {cores} usable core(s)")
        print(f"NOTE: speedup floor not gated ({reason}); wall-clock recorded "
              f"as informational")
    for failure in failures:
        print(f"WARNING: {failure}")
    return 1 if failures and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
