"""Benchmark for Figure 6: accuracy versus training-data size.

Expected shape: accuracy grows with the training fraction for both variants, and the
LH-plugin curve stays at or above the original's across fractions.
"""

from repro.experiments import ExperimentSettings, fig6_scalability as experiment

from conftest import run_once


def test_fig6_scalability(benchmark, save_result):
    settings = ExperimentSettings(model="meanpool", dataset_size=40, epochs=4, seed=0)
    result = run_once(benchmark,
                      lambda: experiment.run(settings, fractions=(0.2, 0.6, 1.0)))
    table = experiment.format_result(result)
    save_result("fig6_scalability", table)

    for variant in ("original", "fusion-dist"):
        curve = [row["metrics"]["hr@10"] for row in result["results"][variant]]
        # More training data should not hurt much: the full-data point beats the
        # smallest fraction (allowing a small tolerance for run-to-run noise).
        assert curve[-1] >= curve[0] - 0.05
