"""Benchmark for Table V: retrieval latency / memory overhead of the LH-plugin.

Expected shape: the plugin's memory overhead stays in the single-digit percent range
and its latency overhead is a small fraction of the total retrieval cost (the paper
reports <0.05% at million-trajectory scale; at the scaled-down sizes used here the
relative overhead is larger but still bounded).
"""

from repro.experiments import table5_efficiency as experiment

from conftest import run_once


def test_table5_efficiency(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiment.run(database_sizes=(1000, 5000, 20000), num_queries=20, repeats=3),
    )
    table = experiment.format_result(result)
    save_result("table5_efficiency", table)

    for row in result["rows"]:
        assert row["memory_increase"] < 0.15
        assert row["latency_increase"] < 1.0
