"""Validate a telemetry JSONL export (and optional snapshot JSON) by schema.

Every line of a ``REPRO_OBS_JSONL`` sink must be a JSON object carrying ``ts``
(unix seconds, number) and ``kind`` (string); the remaining required fields
depend on the kind:

* ``span`` — ``name`` (str), ``tags`` (object of str → scalar), ``seconds``
  (non-negative number), ``depth`` (int ≥ 1);
* ``training_epoch`` — ``epoch`` (int ≥ 1), ``loss`` (number), ``metrics``
  (object);
* ``snapshot`` — ``snapshot`` (object with ``counters`` / ``gauges`` /
  ``histograms`` objects; histogram states carry count/sum/min/max/buckets
  with the registry's fixed bucket count);
* ``stream_alert`` — ``tick`` (int ≥ 1), ``trajectory_id`` (int ≥ 0),
  ``event`` (``"enter"`` or ``"exit"``), ``distance`` / ``kth_distance``
  (numbers), ``measure`` (str) — what :class:`repro.search.StreamMonitor`
  emits on top-k membership changes.

Unknown kinds fail by default (``--allow-unknown`` downgrades them to a
warning) — the point of this checker is that the export format is a contract,
not a convention.  ``--snapshot FILE`` additionally validates a standalone
snapshot JSON (the artifact ``benchmarks/obs_smoke.py`` writes).

Exit status: 0 when everything validates, 1 otherwise — this is what the CI
obs smoke job gates on.
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys
from pathlib import Path

from repro.obs import NUM_BUCKETS


def _is_number(value) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _check_histogram_state(state, where: str, errors: list[str]) -> None:
    if not isinstance(state, dict):
        errors.append(f"{where}: histogram state is not an object")
        return
    for field in ("count", "sum", "min", "max", "buckets"):
        if field not in state:
            errors.append(f"{where}: histogram state missing '{field}'")
            return
    if not isinstance(state["count"], int) or state["count"] < 0:
        errors.append(f"{where}: count must be a non-negative int")
    if not _is_number(state["sum"]):
        errors.append(f"{where}: sum must be a number")
    for bound in ("min", "max"):
        if state[bound] is not None and not _is_number(state[bound]):
            errors.append(f"{where}: {bound} must be a number or null")
    buckets = state["buckets"]
    if (not isinstance(buckets, list) or len(buckets) != NUM_BUCKETS
            or not all(isinstance(b, int) and b >= 0 for b in buckets)):
        errors.append(f"{where}: buckets must be {NUM_BUCKETS} non-negative ints")
    elif sum(buckets) != state["count"]:
        errors.append(f"{where}: bucket counts sum to {sum(buckets)}, "
                      f"count says {state['count']}")


def check_snapshot_dict(snap, where: str, errors: list[str]) -> None:
    if not isinstance(snap, dict):
        errors.append(f"{where}: snapshot is not an object")
        return
    for family in ("counters", "gauges", "histograms"):
        if not isinstance(snap.get(family), dict):
            errors.append(f"{where}: snapshot missing '{family}' object")
            return
    for name, value in snap["counters"].items():
        if not isinstance(value, int):
            errors.append(f"{where}: counter {name} is not an int")
    for name, value in snap["gauges"].items():
        if not _is_number(value):
            errors.append(f"{where}: gauge {name} is not a number")
    for name, state in snap["histograms"].items():
        _check_histogram_state(state, f"{where}: histogram {name}", errors)


def check_event(event, where: str, errors: list[str],
                allow_unknown: bool) -> None:
    if not isinstance(event, dict):
        errors.append(f"{where}: line is not a JSON object")
        return
    if not _is_number(event.get("ts")):
        errors.append(f"{where}: 'ts' missing or not a number")
    kind = event.get("kind")
    if not isinstance(kind, str):
        errors.append(f"{where}: 'kind' missing or not a string")
        return
    if kind == "span":
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where}: span 'name' missing or empty")
        tags = event.get("tags")
        if not isinstance(tags, dict) or not all(
                isinstance(key, str) for key in tags):
            errors.append(f"{where}: span 'tags' must map strings")
        if not _is_number(event.get("seconds")) or event["seconds"] < 0:
            errors.append(f"{where}: span 'seconds' must be a non-negative number")
        if not isinstance(event.get("depth"), int) or event["depth"] < 1:
            errors.append(f"{where}: span 'depth' must be an int >= 1")
    elif kind == "training_epoch":
        if not isinstance(event.get("epoch"), int) or event["epoch"] < 1:
            errors.append(f"{where}: training_epoch 'epoch' must be an int >= 1")
        if not _is_number(event.get("loss")):
            errors.append(f"{where}: training_epoch 'loss' must be a number")
        if not isinstance(event.get("metrics"), dict):
            errors.append(f"{where}: training_epoch 'metrics' must be an object")
    elif kind == "snapshot":
        check_snapshot_dict(event.get("snapshot"), where, errors)
    elif kind == "stream_alert":
        if not isinstance(event.get("tick"), int) or event["tick"] < 1:
            errors.append(f"{where}: stream_alert 'tick' must be an int >= 1")
        if (not isinstance(event.get("trajectory_id"), int)
                or event["trajectory_id"] < 0):
            errors.append(f"{where}: stream_alert 'trajectory_id' must be "
                          f"an int >= 0")
        if event.get("event") not in ("enter", "exit"):
            errors.append(f"{where}: stream_alert 'event' must be "
                          f"'enter' or 'exit'")
        for field in ("distance", "kth_distance"):
            if not _is_number(event.get(field)):
                errors.append(f"{where}: stream_alert '{field}' must be a number")
        if not isinstance(event.get("measure"), str) or not event.get("measure"):
            errors.append(f"{where}: stream_alert 'measure' missing or empty")
    elif not allow_unknown:
        errors.append(f"{where}: unknown event kind {kind!r} "
                      f"(pass --allow-unknown to tolerate)")
    else:
        print(f"warning: {where}: unknown event kind {kind!r}", file=sys.stderr)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", type=Path, help="JSONL export to validate")
    parser.add_argument("--snapshot", type=Path, default=None,
                        help="standalone snapshot JSON to validate as well")
    parser.add_argument("--require-kinds", default="",
                        help="comma-separated kinds that must each appear "
                             "at least once (e.g. 'training_epoch,snapshot')")
    parser.add_argument("--allow-unknown", action="store_true",
                        help="warn on unknown event kinds instead of failing")
    args = parser.parse_args()

    errors: list[str] = []
    seen_kinds: set[str] = set()
    lines = [line for line in args.jsonl.read_text().splitlines() if line.strip()]
    if not lines:
        errors.append(f"{args.jsonl}: no events")
    for number, line in enumerate(lines, start=1):
        where = f"{args.jsonl}:{number}"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"{where}: invalid JSON ({error})")
            continue
        if isinstance(event, dict) and isinstance(event.get("kind"), str):
            seen_kinds.add(event["kind"])
        check_event(event, where, errors, args.allow_unknown)

    for kind in filter(None, (k.strip() for k in args.require_kinds.split(","))):
        if kind not in seen_kinds:
            errors.append(f"{args.jsonl}: required event kind {kind!r} never appeared")

    if args.snapshot is not None:
        try:
            snap = json.loads(args.snapshot.read_text())
        except (OSError, json.JSONDecodeError) as error:
            errors.append(f"{args.snapshot}: unreadable ({error})")
        else:
            check_snapshot_dict(snap, str(args.snapshot), errors)

    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"{args.jsonl}: {len(lines)} events valid "
          f"({', '.join(sorted(seen_kinds))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
