"""Shared fixtures for the benchmark suite.

Each benchmark runs its experiment exactly once (``rounds=1``) — the experiments are
full train/evaluate pipelines, not micro-benchmarks — and saves the formatted table
under ``benchmarks/results/`` so the reproduction artefacts survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Callable that persists (and echoes) an experiment's formatted table."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print("\n" + text)
        return path

    return _save


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
