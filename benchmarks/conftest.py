"""Shared fixtures for the benchmark suite.

Each benchmark runs its experiment exactly once (``rounds=1``) — the experiments are
full train/evaluate pipelines, not micro-benchmarks — and saves the formatted table
under ``benchmarks/results/`` so the reproduction artefacts survive the run.

While a *benchmark* test runs, the process-wide default engine is routed through
an **on-disk** ``MatrixCache`` under ``benchmarks/.matrix_cache/``: ground-truth
matrices are the dominant cost of every harness and are identical across
tables/figures that share a dataset, so repeated tier-1 runs reuse them across
processes instead of recomputing.  The engine is installed per test and the
previous default restored afterwards, so the cache never bleeds into ``tests/``
when both directories are collected in one session.  (The cache is keyed by
data + measure only — delete ``benchmarks/.matrix_cache/`` after changing
distance/kernel code to avoid serving matrices computed by the old code.)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine import MatrixCache, MatrixEngine, get_default_engine, set_default_engine

RESULTS_DIR = Path(__file__).parent / "results"

MATRIX_CACHE_DIR = Path(__file__).parent / ".matrix_cache"


@pytest.fixture(scope="session")
def cached_engine() -> MatrixEngine:
    """One engine (and one on-disk cache handle) shared by the whole session."""
    strategy = os.environ.get("REPRO_ENGINE_STRATEGY", "chunked")
    return MatrixEngine(strategy=strategy,
                        cache=MatrixCache(MATRIX_CACHE_DIR, max_entries=64))


@pytest.fixture(autouse=True)
def persistent_matrix_cache(cached_engine):
    """Back the default engine with the on-disk matrix cache for this test only."""
    previous = get_default_engine()
    set_default_engine(cached_engine)
    yield cached_engine
    set_default_engine(previous)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Callable that persists (and echoes) an experiment's formatted table."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print("\n" + text)
        return path

    return _save


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
