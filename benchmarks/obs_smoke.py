"""End-to-end observability smoke run: one query batch + one training epoch.

Forces ``REPRO_OBS=on``, points the JSONL exporter at a sink, then drives the
full stack the way the acceptance criterion describes — a ``SearchService``
answering queries through a shared-pool engine, followed by one
``SimilarityTrainer`` epoch — and checks the resulting telemetry:

* the ``engine.dp_cells`` registry counter is bit-equal to the legacy
  ``dp_cell_count()`` API *and* to the sum of the per-measure split, with the
  cell work having been aggregated back from shared-pool workers as registry
  deltas;
* engine span histograms (``engine.pairs{...}``), search phase histograms
  (``search.lower_bound`` / ``search.index_probe`` / ``search.refine``) and
  training epoch timings (``train.epoch_seconds``) all recorded;
* service counters agree with ``SearchService.stats()``;
* the JSONL sink received ``training_epoch`` and ``snapshot`` events
  (``benchmarks/check_obs_schema.py`` validates their schemas).

Exit status is strict: any failed check exits non-zero, which is how the CI
smoke job gates.  Artifacts: the JSONL stream (``--jsonl``) and the final
snapshot JSON (``--snapshot``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.data import generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.engine import MatrixEngine, dp_cell_count, reset_dp_cell_count
from repro.models import MeanPoolEncoder
from repro.obs import (
    export_snapshot,
    format_report,
    get_registry,
    set_jsonl_path,
    set_obs_mode,
)
from repro.search import SearchService, TrajectoryIndex
from repro.training import SimilarityTrainer

RESULTS_DIR = Path(__file__).parent / "results"


def run_queries(dataset, engine, num_queries: int, k: int) -> dict:
    trajectories = dataset.point_arrays(spatial_only=True)
    service = SearchService(TrajectoryIndex(trajectories), measure="dtw", k=k,
                            engine=engine, batch_size=4)
    results = service.search_many(trajectories[:num_queries], exclude_self=True)
    # One repeated query exercises the cache-hit path.
    service.search(trajectories[0], exclude=0)
    return {"service": service, "results": results}


def run_training_epoch(dataset) -> dict:
    trajectories = dataset.point_arrays(spatial_only=True)
    truth = normalize_matrix(pairwise_distance_matrix(trajectories, "dtw"),
                             method="mean")
    encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, hidden_dim=12, seed=0)
    trainer = SimilarityTrainer(encoder, seed=0)
    history = trainer.fit(dataset, truth, epochs=1)
    return {"history": history}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=24,
                        help="database size (small: this is a smoke run)")
    parser.add_argument("--queries", type=int, default=3)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--jsonl", type=Path,
                        default=RESULTS_DIR / "obs_smoke.jsonl")
    parser.add_argument("--snapshot", type=Path,
                        default=RESULTS_DIR / "obs_smoke_snapshot.json")
    args = parser.parse_args()

    RESULTS_DIR.mkdir(exist_ok=True)
    args.jsonl.parent.mkdir(parents=True, exist_ok=True)
    args.jsonl.write_text("")  # fresh sink per run
    set_obs_mode("on")
    set_jsonl_path(str(args.jsonl))
    get_registry().reset()
    reset_dp_cell_count()

    dataset = generate_dataset("chengdu", size=args.size, seed=0)
    engine = MatrixEngine(strategy="shared", max_workers=args.workers,
                          chunk_size=4)
    try:
        query_run = run_queries(dataset, engine, args.queries, args.k)
        train_run = run_training_epoch(dataset)
    finally:
        engine.close()

    snap = export_snapshot(workload={"size": args.size,
                                     "queries": args.queries, "k": args.k})
    args.snapshot.write_text(json.dumps(snap, indent=2) + "\n")

    counters = snap["counters"]
    histograms = snap["histograms"]
    failures = []

    def check(condition: bool, label: str) -> None:
        if not condition:
            failures.append(label)

    # Worker-aggregated cell accounting: registry == legacy API == measure sum.
    total = counters.get("engine.dp_cells", 0)
    per_measure = sum(value for name, value in counters.items()
                      if name.startswith("engine.dp_cells."))
    check(total > 0, "engine.dp_cells is zero — no kernel work recorded")
    check(total == dp_cell_count(),
          f"registry total {total} != dp_cell_count() {dp_cell_count()}")
    check(total == per_measure,
          f"per-measure cells {per_measure} do not sum to total {total}")

    check(any(name.startswith("engine.pairs") for name in histograms),
          "no engine.pairs span histogram")
    check(any(name.startswith("engine.dispatch") for name in histograms),
          "no engine.dispatch span histogram (shared pool did not dispatch)")
    for phase in ("search.lower_bound", "search.index_probe", "search.refine"):
        check(any(name.startswith(phase) for name in histograms),
              f"no {phase} span histogram")
    check(histograms.get("train.epoch_seconds", {}).get("count", 0) >= 1,
          "no train.epoch_seconds observation")

    service = query_run["service"]
    stats = service.stats()
    check(counters.get("service.queries", 0) == stats["queries_served"],
          "service.queries counter disagrees with stats()")
    check(stats["cache_hits"] >= 1, "repeated query did not hit the result cache")
    metrics = train_run["history"].metrics[0]
    check("epoch_seconds" in metrics,
          "trainer did not record epoch timings into history metrics")

    events = [json.loads(line) for line in
              args.jsonl.read_text().splitlines() if line.strip()]
    kinds = {event["kind"] for event in events}
    check("training_epoch" in kinds, "no training_epoch event in JSONL sink")
    check("snapshot" in kinds, "no snapshot event in JSONL sink")

    print(format_report())
    print(f"\njsonl events: {len(events)} ({', '.join(sorted(kinds))})")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("obs smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
