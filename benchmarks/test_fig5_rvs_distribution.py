"""Benchmark for Figure 5: RVS distributions (ground truth vs Euclidean vs Fusion).

Expected shape: ground-truth RVS values are all positive on the selected violating
triplets, the Euclidean model's RVS mass is (almost) entirely negative, and the
fusion distance moves a substantial fraction of its mass to the positive side.
"""

from repro.experiments import ExperimentSettings, fig5_rvs_distribution as experiment

from conftest import run_once


def test_fig5_rvs_distribution(benchmark, save_result):
    settings = ExperimentSettings(model="meanpool", dataset_size=40, epochs=4, seed=0)
    result = run_once(benchmark, lambda: experiment.run(settings, max_violating=300))
    table = experiment.format_result(result)
    save_result("fig5_rvs_distribution", table)

    summary = result["summary"]
    assert summary["ground_truth"]["fraction_positive"] == 1.0
    assert summary["euclidean"]["fraction_positive"] < 0.2
    assert summary["fusion"]["fraction_positive"] >= summary["euclidean"]["fraction_positive"]
