"""Chaos smoke run: seeded faults through the serving engine, gated on parity.

Drives one shared-pool :class:`~repro.engine.MatrixEngine` through four phases
and gates every one of them on the resilience layer's core promise — **a query
that completes is bit-identical to the serial no-fault reference**:

* **A (baseline)** — no faults installed; pool result equals the serial
  reference and the disabled injection hooks left every fault counter at
  zero.
* **B (flaky)** — a seeded ``shm_attach_fail``/``slow_worker`` schedule makes
  workers stumble; the dispatch retries only the unfinished chunks, stays
  inside the policy's retry budget, never degrades, and still matches the
  reference bitwise.
* **C (hard down)** — ``worker_crash@call=1`` crashes every fresh worker's
  first chunk, so the pool is deterministically unusable; the retry budget
  drains, the degradation ladder steps the strategy down with its one-time
  ``RuntimeWarning``, the in-process fallback finishes the call, and the
  answer is still bitwise-exact.
* **D (recovery)** — faults cleared; after ``probe_interval`` clean calls at
  the degraded rung the ladder probes back up to the requested strategy and
  ``resilience.recoveries`` ticks.

Exit status is strict: any failed check exits non-zero, which is how the CI
chaos job gates.  The per-phase record (checks, counter deltas, retry counts)
lands in ``benchmarks/results/chaos_smoke.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path

import numpy as np

from repro.data import generate_dataset
from repro.engine import (
    MatrixEngine,
    live_arena_names,
    reset_shared_pool,
    shared_memory_available,
)
from repro.obs import get_registry
from repro.resilience import (
    ResiliencePolicy,
    clear_fault_plan,
    install_fault_plan,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Registry counters worth recording per phase (deltas, not totals).
COUNTERS = ("resilience.retries", "resilience.deadline_hits",
            "resilience.fallback_chunks", "resilience.breaker_trips",
            "resilience.degradations", "resilience.recoveries",
            "resilience.faults_injected")


def counter_snapshot() -> dict:
    counters = get_registry().snapshot()["counters"]
    return {name: counters.get(name, 0) for name in COUNTERS}


def delta(before: dict, after: dict) -> dict:
    return {name: after[name] - before[name] for name in COUNTERS
            if after[name] != before[name]}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=14,
                        help="database size (small: this is a smoke run)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--chunk-size", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42,
                        help="fault-plan seed for the flaky phase")
    parser.add_argument("--out", type=Path,
                        default=RESULTS_DIR / "chaos_smoke.json")
    args = parser.parse_args()

    dataset = generate_dataset("chengdu", size=args.size, seed=0)
    trajectories = dataset.point_arrays(spatial_only=True)
    reference = MatrixEngine(strategy="serial", cache=None).pairwise(
        trajectories, "dtw")

    requested = "shared" if shared_memory_available() else "process"
    # A generous budget: the flaky phase must never drain it (worker/chunk
    # scheduling varies across machines, so the exact failure count does
    # too), while the hard-down phase drains any finite budget by design.
    policy = ResiliencePolicy(max_retries=6, backoff_base=0.01,
                              backoff_max=0.05, probe_interval=2)
    engine = MatrixEngine(strategy=requested, cache=None,
                          chunk_size=args.chunk_size,
                          max_workers=args.workers, policy=policy)

    failures: list[str] = []
    record = {"requested_strategy": requested, "size": args.size,
              "workers": args.workers, "seed": args.seed, "phases": {}}

    def check(condition: bool, label: str) -> None:
        if not condition:
            failures.append(label)

    def run_phase(name: str, spec: str | None, expect_warning: bool = False):
        if spec is None:
            clear_fault_plan()
        else:
            install_fault_plan(spec)
        before = counter_snapshot()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            values = engine.pairwise(trajectories, "dtw")
        ladder_warnings = [w for w in caught
                           if issubclass(w.category, RuntimeWarning)
                           and "degrading" in str(w.message)]
        exact = bool(np.array_equal(values, reference))
        check(exact, f"phase {name}: values diverged from the serial "
                     f"no-fault reference")
        if expect_warning:
            check(len(ladder_warnings) == 1,
                  f"phase {name}: expected exactly one degradation "
                  f"RuntimeWarning, saw {len(ladder_warnings)}")
        else:
            check(not ladder_warnings,
                  f"phase {name}: unexpected degradation warning")
        phase_record = {
            "spec": spec, "bit_identical": exact,
            "retries": engine.last_dispatch.get("retries", 0),
            "fallback_chunks": engine.last_dispatch.get("fallback_chunks", 0),
            "ladder_offset": engine._breaker.offset,
            "counters": delta(before, counter_snapshot()),
        }
        record["phases"][name] = phase_record
        return phase_record

    try:
        # -- A: clean baseline -- disabled hooks must be invisible.
        phase = run_phase("A_baseline", None)
        check(phase["counters"].get("resilience.faults_injected", 0) == 0,
              "phase A: faults fired with no plan installed")
        check(phase["retries"] == 0, "phase A: clean dispatch retried")

        # -- B: flaky but recoverable -- retries inside the budget, no rung
        # change.  The parent-side schedule is seeded, so a failing run
        # replays exactly from the recorded spec.
        phase = run_phase(
            "B_flaky",
            f"seed={args.seed};shm_attach_fail@p=0.2;"
            f"slow_worker@p=0.2,delay=0.002")
        check(phase["retries"] <= policy.max_retries,
              f"phase B: {phase['retries']} retries exceed the budget "
              f"of {policy.max_retries}")
        check(phase["ladder_offset"] == 0,
              "phase B: a transient schedule must not degrade the ladder")

        # -- C: pool hard down -- budget drains, ladder steps down once,
        # in-process fallback still answers bitwise-exactly.
        phase = run_phase("C_hard_down", "worker_crash@call=1",
                          expect_warning=True)
        check(phase["ladder_offset"] == 1,
              f"phase C: expected one rung down, got {phase['ladder_offset']}")
        check(phase["counters"].get("resilience.fallback_chunks", 0) > 0,
              "phase C: the in-process fallback never ran")

        # -- D: recovery -- clean calls at the degraded rung probe back up.
        clear_fault_plan()
        before = counter_snapshot()
        for _ in range(policy.probe_interval + 1):
            values = engine.pairwise(trajectories, "dtw")
            check(bool(np.array_equal(values, reference)),
                  "phase D: recovery call diverged from the reference")
        recovery = delta(before, counter_snapshot())
        record["phases"]["D_recovery"] = {
            "spec": None, "ladder_offset": engine._breaker.offset,
            "counters": recovery,
        }
        check(engine._breaker.offset == 0,
              f"phase D: ladder still degraded after "
              f"{policy.probe_interval + 1} clean calls")
        check(recovery.get("resilience.recoveries", 0) >= 1,
              "phase D: no recovery was counted")
    finally:
        clear_fault_plan()
        if requested == "shared":
            reset_shared_pool(args.workers)

    leaked = sorted(live_arena_names())
    check(not leaked, f"leaked shared-memory segments: {leaked}")
    record["leaked_arenas"] = leaked
    record["failures"] = failures

    RESULTS_DIR.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    for name, phase in record["phases"].items():
        counters = ", ".join(f"{key.split('.', 1)[1]}={value}"
                             for key, value in phase["counters"].items()) or "-"
        print(f"{name:12s} offset={phase['ladder_offset']}  {counters}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
