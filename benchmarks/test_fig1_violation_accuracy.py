"""Benchmark for Figure 1: accuracy versus triangle-inequality violation degree.

Expected shape: the original (Euclidean) model loses accuracy in the most violating
query bucket relative to the least violating one, while the LH-plugin narrows or
closes that gap.
"""

from repro.experiments import ExperimentSettings, fig1_violation_accuracy as experiment

from conftest import run_once


def test_fig1_violation_accuracy(benchmark, save_result):
    settings = ExperimentSettings(model="meanpool", dataset_size=40, epochs=5, seed=0)
    result = run_once(benchmark, lambda: experiment.run(settings, num_buckets=3, k=10))
    table = experiment.format_result(result)
    save_result("fig1_violation_accuracy", table)

    original = result["results"]["original"]["bucket_hit_rates"]
    plugin = result["results"]["fusion-dist"]["bucket_hit_rates"]
    assert len(original) == len(plugin) == 3
    # The plugin should not be worse than the original in the most violating bucket.
    assert plugin[-1] >= original[-1] - 0.1
