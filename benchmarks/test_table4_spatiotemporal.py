"""Benchmark for Table IV: spatio-temporal models (ST2Vec, Tedj) with the LH-plugin.

Expected shape: the plugin matches or improves both models on the TP, DITA and
discrete Fréchet ground truths.
"""

from repro.experiments import ExperimentSettings, table4_spatiotemporal as experiment

from conftest import run_once


def test_table4_spatiotemporal(benchmark, save_result):
    settings = ExperimentSettings(preset="tdrive", dataset_size=24, epochs=2,
                                  hidden_dim=16, seed=0)
    result = run_once(
        benchmark,
        lambda: experiment.run(settings, models=("st2vec", "tedj"),
                               measures=("tp", "dita", "frechet")),
    )
    table = experiment.format_result(result)
    save_result("table4_spatiotemporal", table)

    improvements = []
    for model in result["models"]:
        for measure in result["measures"]:
            cell = result["results"][model][measure]
            improvements.append(cell["lh-plugin"]["hr@10"] - cell["original"]["hr@10"])
    assert sum(improvements) / len(improvements) > -0.05
