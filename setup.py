"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without network access (legacy
``setup.py develop`` does not need to download the ``wheel`` backend).
"""

from setuptools import setup

setup()
